"""Job descriptions and runtime records of the multi-job cluster scheduler.

A :class:`JobSpec` is what a tenant submits: which RLHF algorithm and model
sizes to train, the data shape, a priority, when the job arrives and how many
RLHF iterations it must complete, plus an elastic GPU range
(``min_gpus``/``max_gpus``) the scheduler may place it within.  A
:class:`Job` is the scheduler's mutable runtime record of one submitted spec:
its phase, current partition, plan and engine-derived iteration profile,
accumulated progress and the displacement counters (replans, preemptions,
elastic resizes).

Progress is **iteration-granular**: a job advances one whole RLHF iteration
per kernel event at the pace of its engine-simulated
:class:`~repro.sched.profiles.IterationProfile`; an iteration interrupted by
a preemption, failure or elastic migration is lost (its GPU time is still
billed), exactly as an aborted training step would be on a real cluster.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Optional

from ..core.dataflow import DataflowGraph
from ..core.plan import ExecutionPlan
from ..core.workload import RLHFWorkload, instructgpt_workload

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from ..service.server import PlanSession
    from ..sim.kernel import Event
    from .partition import Partition
    from .profiles import IterationProfile

__all__ = ["JobSpec", "JobPhase", "Job"]


@dataclass(frozen=True)
class JobSpec:
    """One RLHF training job submitted to the shared cluster.

    ``min_gpus``/``max_gpus`` bound the mesh-shaped partitions the scheduler
    may place the job on; ``max_gpus`` of ``None`` means the job can elasticly
    grow to any partition the cluster offers.  ``target_iterations`` is the
    number of RLHF iterations after which the job completes.
    """

    name: str
    algorithm: str = "ppo"
    actor_size: str = "7b"
    critic_size: str = "7b"
    batch_size: int = 256
    prompt_len: int = 1024
    gen_len: int = 1024
    n_ppo_minibatches: int = 8
    priority: int = 0
    arrival_time: float = 0.0
    target_iterations: int = 50
    min_gpus: int = 8
    max_gpus: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("job name must be non-empty")
        if self.target_iterations < 1:
            raise ValueError("target_iterations must be >= 1")
        if self.arrival_time < 0:
            raise ValueError("arrival_time must be >= 0")
        if self.min_gpus < 1:
            raise ValueError("min_gpus must be >= 1")
        if self.max_gpus is not None and self.max_gpus < self.min_gpus:
            raise ValueError(
                f"max_gpus ({self.max_gpus}) must be >= min_gpus ({self.min_gpus})"
            )
        # Validate the algorithm at submission time: a typo would otherwise
        # surface as a deep KeyError at graph-build time inside the
        # scheduler's event loop, long after the job was accepted.
        from ..algorithms.registry import available_algorithms  # avoids a cycle

        if self.algorithm.lower() not in available_algorithms():
            raise ValueError(
                f"job {self.name!r} requests unknown RLHF algorithm "
                f"{self.algorithm!r}; available: {available_algorithms()}"
            )

    @property
    def gpu_ceiling(self) -> float:
        """Upper bound of the elastic GPU range (``inf`` when unbounded)."""
        return float("inf") if self.max_gpus is None else float(self.max_gpus)

    def build_graph(self) -> DataflowGraph:
        """The job's RLHF dataflow graph (by registered algorithm name)."""
        from ..algorithms.registry import build_graph  # local import avoids a cycle

        return build_graph(self.algorithm)

    def build_workload(self) -> RLHFWorkload:
        """The job's workload (InstructGPT-style model roles)."""
        return instructgpt_workload(
            actor_size=self.actor_size,
            critic_size=self.critic_size,
            batch_size=self.batch_size,
            prompt_len=self.prompt_len,
            gen_len=self.gen_len,
            n_ppo_minibatches=self.n_ppo_minibatches,
        )


class JobPhase(Enum):
    """Lifecycle phase of a scheduled job."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    UNPLACEABLE = "unplaceable"
    """No partition of the (idle) cluster can host the job without OOM."""


_JOB_IDS = itertools.count()


@dataclass
class Job:
    """Mutable runtime record of one submitted :class:`JobSpec`."""

    spec: JobSpec
    graph: DataflowGraph
    workload: RLHFWorkload
    phase: JobPhase = JobPhase.PENDING
    partition: Optional["Partition"] = None
    plan: Optional[ExecutionPlan] = None
    profile: Optional["IterationProfile"] = None
    """Engine-derived per-iteration phase profile of the current placement."""
    seconds_per_iteration: float = float("inf")
    """True iteration time of the current placement (engine-simulated)."""
    planned_seconds_per_iteration: float = float("inf")
    """The estimator's iteration time of the current plan — what the search
    optimised.  Elastic-resize decisions compare planned against planned so
    the comparison stays within one cost model."""
    iterations_done: float = 0.0
    """Whole iterations completed (integral; partial iterations are lost on
    displacement)."""
    iteration_started_at: Optional[float] = None
    """Start of the in-flight iteration (for intra-iteration phase queries)."""
    pending_event: Optional["Event"] = None
    """The job's next scheduled iteration-boundary kernel event."""
    prev_partition: Optional["Partition"] = None
    prev_plan: Optional[ExecutionPlan] = None
    """Located layout of the last segment — what migration costs are charged
    against when the job is re-placed."""
    lost_params: bool = False
    """Set when a node failure destroyed the resident parameter copy: the
    next placement pays a full parameter reload instead of a relayout."""
    switch_seconds: float = 0.0
    """Total parameter-migration time charged across all segments."""
    segment_started_at: Optional[float] = None
    first_started_at: Optional[float] = None
    completed_at: Optional[float] = None
    generation: int = 0
    """Bumped on every displacement; invalidates scheduled iteration events."""
    n_replans: int = 0
    n_preemptions: int = 0
    n_resizes: int = 0
    n_swaps: int = 0
    """Hot plan swaps taken at iteration boundaries (online re-planning)."""
    session: Optional["PlanSession"] = None
    """Background online re-planning session improving the current plan
    (only when the scheduler runs with ``online_replanning`` enabled)."""
    gpu_seconds: float = 0.0
    uid: int = field(default_factory=lambda: next(_JOB_IDS))

    @classmethod
    def from_spec(cls, spec: JobSpec) -> "Job":
        return cls(spec=spec, graph=spec.build_graph(), workload=spec.build_workload())

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def remaining_iterations(self) -> float:
        """Iterations still to run (never negative)."""
        return max(0.0, self.spec.target_iterations - self.iterations_done)

    @property
    def is_running(self) -> bool:
        return self.phase is JobPhase.RUNNING

    @property
    def throughput(self) -> float:
        """Current true iterations/sec (0 when not running)."""
        if not self.is_running or self.seconds_per_iteration <= 0:
            return 0.0
        return 1.0 / self.seconds_per_iteration

    @property
    def planned_throughput(self) -> float:
        """Current estimator iterations/sec (0 when not running)."""
        if not self.is_running or self.planned_seconds_per_iteration <= 0:
            return 0.0
        return 1.0 / self.planned_seconds_per_iteration

    def accrue_gpu_time(self, now: float) -> None:
        """Bank the GPU time of the current running segment up to ``now``.

        Progress is *not* banked here — iterations complete only at their
        kernel events; a segment cut short mid-iteration paid for GPUs
        without finishing the step.
        """
        if self.segment_started_at is None:
            return
        elapsed = max(0.0, now - self.segment_started_at)
        if self.partition is not None:
            self.gpu_seconds += elapsed * self.partition.n_gpus
        self.segment_started_at = now

    def current_phase(self, now: float) -> str:
        """The intra-iteration phase in flight at ``now`` (for the timeline)."""
        if self.profile is None or self.iteration_started_at is None:
            return "startup"
        return self.profile.phase_at(now - self.iteration_started_at)
