"""Scheduling policies: who runs where on the shared cluster.

A policy makes one decision at a time — either a single placement (a scored
:class:`~repro.sched.costing.Candidate`) or a set of preemptions — and the
scheduler's dispatch loop re-invokes it until it has nothing more to do.
This keeps every policy simple (no shadow bookkeeping of tentative
placements) while the plan-service cache makes the repeated scoring cheap.

Shipped policies:

* :class:`FirstFitPolicy` — FIFO arrivals, smallest feasible partition.
* :class:`BestThroughputPolicy` — packs by iterations/sec per GPU across all
  queued jobs and free partition shapes.
* :class:`PriorityPolicy` — strict priority order with preemption of
  lower-priority running jobs when the head job cannot fit.
* :class:`StaticEqualPolicy` — the naive baseline: the cluster is carved into
  fixed equal whole-node slots once, jobs FIFO onto free slots, no elasticity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .costing import Candidate, PlanCosting
from .job import Job
from .partition import Partition, PartitionManager, equal_node_partitions

__all__ = [
    "PolicyDecision",
    "SchedulingPolicy",
    "FirstFitPolicy",
    "BestThroughputPolicy",
    "PriorityPolicy",
    "StaticEqualPolicy",
    "get_policy",
    "available_policies",
]


@dataclass
class PolicyDecision:
    """One scheduling step: place one job, or preempt some, or do nothing."""

    placement: Optional[Candidate] = None
    preemptions: List[Job] = field(default_factory=list)

    @property
    def is_noop(self) -> bool:
        return self.placement is None and not self.preemptions


class SchedulingPolicy:
    """Base class of all scheduling policies."""

    name: str = "base"
    allows_resize: bool = True
    """Whether the scheduler may elastically resize this policy's placements."""

    def decide(
        self,
        queue: Sequence[Job],
        running: Sequence[Job],
        manager: PartitionManager,
        costing: PlanCosting,
    ) -> PolicyDecision:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _feasible(candidates: Sequence[Candidate]) -> List[Candidate]:
        return [c for c in candidates if c.feasible]

    @staticmethod
    def _first_fit(
        job: Job, manager: PartitionManager, costing: PlanCosting
    ) -> Optional[Candidate]:
        """Smallest feasible free partition for ``job`` (shape-deduplicated)."""
        shapes = manager.distinct_shapes(job.spec.min_gpus, job.spec.gpu_ceiling)
        if not shapes:
            return None
        # Shapes come back smallest first; score them all in one batch (the
        # cache collapses repeats) and take the smallest feasible one.
        for candidate in costing.score_one(job, shapes):
            if candidate.feasible:
                return candidate
        return None


class FirstFitPolicy(SchedulingPolicy):
    """FIFO over arrivals; each job takes the smallest feasible partition.

    All (queued job, free shape) candidates are batched into **one**
    overlapped costing wave — novel shapes search concurrently on the plan
    service while repeats collapse onto cache hits — and the decision is then
    read off the scored list in FIFO order (smallest feasible shape first),
    exactly as the sequential per-job probing would have chosen.  Scores for
    jobs behind the placed one are not wasted: shapes repeat across
    decisions, so the speculative searches land in the plan-service cache
    and serve the following decisions — cold search work is pulled forward
    and overlapped, not multiplied.
    """

    name = "first_fit"

    def decide(self, queue, running, manager, costing) -> PolicyDecision:
        pairs: List[Tuple[Job, Partition]] = []
        for job in queue:
            shapes = manager.distinct_shapes(job.spec.min_gpus, job.spec.gpu_ceiling)
            pairs.extend((job, shape) for shape in shapes)
        if not pairs:
            return PolicyDecision()
        by_job: dict = {}
        for candidate in costing.score(pairs):
            by_job.setdefault(candidate.job.uid, []).append(candidate)
        for job in queue:
            # Shapes were enumerated smallest first and score() preserves
            # order, so the first feasible candidate is the smallest fit.
            for candidate in by_job.get(job.uid, ()):
                if candidate.feasible:
                    return PolicyDecision(placement=candidate)
        return PolicyDecision()


class BestThroughputPolicy(SchedulingPolicy):
    """Greedy packing by aggregate-throughput density.

    All (queued job, free partition shape) pairs are scored through the plan
    service in one concurrent batch; the pair with the highest iterations/sec
    *per GPU* is placed.  Density (rather than raw iterations/sec) is the
    greedy criterion that maximizes aggregate cluster throughput: parallel
    efficiency is sub-linear, so spending GPUs where each contributes most
    packs more concurrent jobs onto the cluster.
    """

    name = "best_throughput"

    def decide(self, queue, running, manager, costing) -> PolicyDecision:
        pairs: List[Tuple[Job, Partition]] = []
        for job in queue:
            for shape in manager.distinct_shapes(job.spec.min_gpus, job.spec.gpu_ceiling):
                pairs.append((job, shape))
        if not pairs:
            return PolicyDecision()
        feasible = self._feasible(costing.score(pairs))
        if not feasible:
            return PolicyDecision()
        best = max(
            feasible,
            key=lambda c: (
                c.throughput_density,
                c.iterations_per_second,
                -c.job.spec.arrival_time,
                -c.job.uid,
            ),
        )
        return PolicyDecision(placement=best)


class PriorityPolicy(SchedulingPolicy):
    """Strict priority order with preemption, no backfilling.

    The queue is served highest priority first (FIFO within a priority
    level).  When the head job cannot be placed and strictly lower-priority
    jobs are running, the policy preempts the lowest-priority victims whose
    GPUs (plus the current free set) admit a partition for the head job; the
    displaced victims are re-queued and later re-planned with warm starts.
    Lower-priority jobs never jump over a blocked head job, so a preempted
    job cannot immediately steal its own GPUs back.
    """

    name = "priority"

    def decide(self, queue, running, manager, costing) -> PolicyDecision:
        ordered = sorted(
            queue, key=lambda j: (-j.spec.priority, j.spec.arrival_time, j.uid)
        )
        if not ordered:
            return PolicyDecision()
        head = ordered[0]
        candidate = self._first_fit(head, manager, costing)
        if candidate is not None:
            return PolicyDecision(placement=candidate)
        victims = self._victims_for(head, running, manager, costing)
        if victims:
            return PolicyDecision(preemptions=victims)
        return PolicyDecision()

    @staticmethod
    def _victims_for(
        job: Job,
        running: Sequence[Job],
        manager: PartitionManager,
        costing: PlanCosting,
    ) -> List[Job]:
        """Lowest-priority victims whose GPUs give ``job`` a *feasible* home.

        Geometry alone is not enough: a head job whose plan OOMs everywhere
        would otherwise cascade-preempt every lower-priority job and then
        still block.  Victims are only returned once some partition of the
        hypothetically freed cluster admits a memory-feasible plan (the
        scoring is cached, so the dry run is cheap).
        """
        lower = sorted(
            (r for r in running if r.spec.priority < job.spec.priority),
            key=lambda r: (r.spec.priority, -(r.first_started_at or 0.0), r.uid),
        )
        victims: List[Job] = []
        freed: set = set()
        for victim in lower:
            victims.append(victim)
            freed |= manager.owner_ids(victim.uid)
            shapes = manager.distinct_shapes(
                job.spec.min_gpus, job.spec.gpu_ceiling, extra_free=frozenset(freed)
            )
            if shapes and any(c.feasible for c in costing.score_one(job, shapes)):
                return victims
        return []


class StaticEqualPolicy(SchedulingPolicy):
    """Naive static baseline: fixed equal whole-node slots, FIFO, no elasticity.

    The cluster is carved once into ``n_slots`` equal whole-node partitions
    (default: one slot per node).  Arriving jobs take any free slot in FIFO
    order; slots never merge, split or move, so GPUs idle whenever a slot's
    job finishes early — exactly the rigidity the elastic policies remove.
    """

    name = "static_equal"
    allows_resize = False

    def __init__(self, n_slots: Optional[int] = None) -> None:
        self.n_slots = n_slots
        self._slots: Optional[List[Partition]] = None
        self._slots_cluster = None

    def _slots_for(self, manager: PartitionManager) -> List[Partition]:
        if self._slots is None or self._slots_cluster != manager.cluster:
            n_slots = self.n_slots if self.n_slots is not None else manager.cluster.n_nodes
            self._slots = equal_node_partitions(manager.cluster, n_slots)
            self._slots_cluster = manager.cluster
        return self._slots

    def decide(self, queue, running, manager, costing) -> PolicyDecision:
        free = manager.free_ids
        open_slots = [
            slot for slot in self._slots_for(manager) if slot.device_id_set <= free
        ]
        # One overlapped wave over every (job, fitting slot) pair; the FIFO
        # selection below is unchanged (slots are identical shapes anyway, so
        # repeats collapse onto the same cached search).
        pairs: List[Tuple[Job, Partition]] = []
        for job in queue:
            pairs.extend(
                (job, slot) for slot in open_slots if slot.n_gpus >= job.spec.min_gpus
            )
        if not pairs:
            return PolicyDecision()
        by_job: dict = {}
        for candidate in costing.score(pairs):
            by_job.setdefault(candidate.job.uid, []).append(candidate)
        for job in queue:
            for candidate in by_job.get(job.uid, ()):
                if candidate.feasible:
                    return PolicyDecision(placement=candidate)
        return PolicyDecision()


_POLICIES = {
    FirstFitPolicy.name: FirstFitPolicy,
    BestThroughputPolicy.name: BestThroughputPolicy,
    PriorityPolicy.name: PriorityPolicy,
    StaticEqualPolicy.name: StaticEqualPolicy,
}


def available_policies() -> List[str]:
    """Names accepted by :func:`get_policy`."""
    return sorted(_POLICIES)


def get_policy(policy: "str | SchedulingPolicy") -> SchedulingPolicy:
    """Resolve a policy instance from a name (or pass an instance through)."""
    if isinstance(policy, SchedulingPolicy):
        return policy
    key = str(policy).lower()
    if key not in _POLICIES:
        raise KeyError(
            f"unknown scheduling policy {policy!r}; available: {available_policies()}"
        )
    return _POLICIES[key]()
