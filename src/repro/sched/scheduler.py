"""Trace-driven multi-job scheduler over one shared GPU cluster.

:class:`ClusterScheduler` admits a stream of RLHF training jobs
(:class:`~repro.sched.job.JobSpec`) onto a shared
:class:`~repro.cluster.hardware.ClusterSpec` and simulates the cluster on
the shared discrete-event kernel (:class:`~repro.sim.kernel.SimKernel`) —
the same kernel the iteration-level runtime engine executes plans on.  The
event loop covers:

* **arrivals** — jobs join the queue at their arrival time;
* **iteration boundaries** — a placed job advances one whole RLHF iteration
  per kernel event, paced by the engine-simulated
  :class:`~repro.sched.profiles.IterationProfile` of its searched plan (not
  a flat ``iters/s`` scalar), and completes at the boundary that reaches
  ``target_iterations``;
* **failures / recoveries** — injected whole-node failures displace every
  job whose partition touches the node; recoveries return the capacity;
* **elastic resizes** — when capacity frees up and the queue is empty,
  running jobs may migrate to larger partitions when the re-planned
  throughput gain clears a threshold.

Progress is iteration-faithful: displacements and resizes land at intra-
iteration phase granularity (the interrupted call is named in the
timeline), the cut iteration's work is lost while its GPU time is still
billed, and every re-placement of a previously running job is charged the
real parameter-migration cost priced by
:class:`~repro.realloc.cost.ReallocCostModel` on the parent cluster
(:class:`~repro.sched.profiles.MigrationCostModel`) — zero for resuming in
place, inter-node bandwidth for moving across nodes, and a full parameter
reload after a node failure destroyed the resident copy.

Every placement is a full plan search over the partition's carved cluster,
served by the shared :class:`~repro.service.server.PlanService`: same-shaped
partitions are exact cache hits, and displaced jobs re-plan with a reduced
budget, warm-started from their own previously cached plans (same
fingerprint family) — cold planning happens once per (job type, shape).

A run can export one merged Chrome trace spanning cluster-level events and
per-job iteration phases (:meth:`ClusterScheduler.export_chrome_trace`,
``schedule_trace(trace_path=...)``), loadable in ``chrome://tracing`` or
Perfetto.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..cluster.hardware import ClusterSpec
from ..core.parallel_search import _env_float
from ..core.plan import ExecutionPlan
from ..core.pruning import PruneConfig
from ..core.search import SearchConfig
from ..obs.export import record_counter_tracks, write_metrics_snapshot
from ..obs.log import get_logger
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.provenance import get_ledger
from ..obs.tracing import get_tracer
from ..service.server import PlanRequest, PlanService
from ..sim.kernel import Event, SimKernel
from ..sim.trace import TraceRecorder
from .costing import Candidate, PlanCosting
from .job import Job, JobPhase, JobSpec
from .metrics import JobMetrics, ScheduleReport
from .partition import Partition, PartitionManager
from .policies import SchedulingPolicy, get_policy
from .profiles import IterationProfile, IterationProfiler, MigrationCostModel

__all__ = ["NodeFailure", "SchedulerConfig", "ClusterScheduler", "schedule_trace"]

# Event kinds with their processing priority within one timestamp: capacity
# changes first (failures take GPUs away, recoveries return them), then
# arrivals, then iteration boundaries (which include completions), then
# background search polls (which only consume search budget, never capacity).
_FAILURE, _RECOVERY, _ARRIVAL, _ITERATION = "failure", "recovery", "arrival", "iteration"
_SEARCH_POLL = "search_poll"
_PRIORITY = {_FAILURE: 0, _RECOVERY: 1, _ARRIVAL: 2, _ITERATION: 3, _SEARCH_POLL: 4}

_OFF_VALUES = {"off", "0", "false", "no", "disabled"}


def _env_flag(name: str, default: bool) -> bool:
    """Boolean knob: unset → ``default``; any :data:`_OFF_VALUES` word → off."""
    raw = os.environ.get(name, "").strip().lower()
    if not raw:
        return default
    return raw not in _OFF_VALUES


@dataclass(frozen=True)
class NodeFailure:
    """An injected whole-node failure (optionally with a recovery time)."""

    time: float
    node: int
    recovery_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("failure time must be >= 0")
        if self.recovery_time is not None and self.recovery_time <= self.time:
            raise ValueError("recovery_time must be after the failure time")


@dataclass
class SchedulerConfig:
    """Knobs of the scheduling loop (search budgets, elasticity)."""

    search: SearchConfig = field(
        default_factory=lambda: SearchConfig(
            max_iterations=400, time_budget_s=2.0, record_history=False
        )
    )
    """Budget of cold placements (first search of a (job type, shape))."""
    replan_search: Optional[SearchConfig] = None
    """Budget of warm-started replans; defaults to a quarter of ``search``."""
    prune: PruneConfig = field(default_factory=PruneConfig)
    elastic: bool = True
    """Whether running jobs may grow onto freed capacity."""
    resize_threshold: float = 1.05
    """Minimum relative iterations/sec gain for an elastic migration."""
    max_dispatch_rounds: int = 256
    """Safety bound on placement/preemption rounds per event."""
    online_replanning: bool = False
    """Keep searching better plans for running jobs in the background and
    hot-swap at iteration boundaries when the remaining-work gain clears
    ``swap_margin`` after charging the real parameter-switch cost."""
    online_search: Optional[SearchConfig] = None
    """Budget of one job's background session; defaults to 4x ``search``
    (spread over the job's runtime, one slice per poll)."""
    poll_interval_s: float = field(
        default_factory=lambda: _env_float("REPRO_SCHED_POLL_INTERVAL", 20.0)
    )
    """Virtual seconds between ``SEARCH_POLL`` kernel events
    (``REPRO_SCHED_POLL_INTERVAL``)."""
    poll_iterations: int = 200
    """Search proposals per chain consumed by one background poll."""
    swap_margin: float = field(
        default_factory=lambda: max(1.0, _env_float("REPRO_SCHED_SWAP_MARGIN", 1.05))
    )
    """Minimum ratio of current planned iteration time over the candidate's
    switch-amortized iteration time for a hot swap (``REPRO_SCHED_SWAP_MARGIN``;
    clamped to >= 1 so a swap can never be taken at a loss)."""
    bg_core_share: float = field(
        default_factory=lambda: min(1.0, _env_float("REPRO_BG_CORE_SHARE", 0.5))
    )
    """Fraction of the service's core budget one background session may
    borrow per poll (``REPRO_BG_CORE_SHARE``); the shared governor still
    arbitrates, so foreground replans always win the contention."""
    timeline: bool = field(
        default_factory=lambda: _env_flag("REPRO_SCHED_TIMELINE", True)
    )
    """Whether to record the per-decision timeline (``REPRO_SCHED_TIMELINE``).
    Off, a month-long fleet replay accumulates no in-memory timeline entries
    and pays no per-decision metrics/logging cost; the schedule report's
    ``timeline`` list is simply empty."""
    counter_interval_s: float = field(
        default_factory=lambda: max(
            0.0, _env_float("REPRO_SCHED_COUNTER_INTERVAL", 0.0)
        )
    )
    """Minimum virtual seconds between live counter-track samples
    (``REPRO_SCHED_COUNTER_INTERVAL``; 0 samples at every dispatch step).
    Fleet replays set an interval so the in-memory sample list stays bounded
    by the horizon, not the event count."""
    memoize_candidates: bool = False
    """Memoize (job-type, shape) → scored candidate inside :class:`PlanCosting`.
    Off by default: the memo short-circuits the plan service, so service-level
    cache statistics stop counting repeated scoring waves.  Fleet replay turns
    it on — thousands of decisions re-score identical candidates."""

    def resolved_replan_search(self) -> SearchConfig:
        if self.replan_search is not None:
            return self.replan_search
        return dataclasses.replace(
            self.search,
            max_iterations=max(1, self.search.max_iterations // 4),
            time_budget_s=self.search.time_budget_s / 4.0,
        )

    def resolved_online_search(self) -> SearchConfig:
        """Budget of one background session (default: 4x the cold budget).

        Generous on purpose — the whole point of online re-planning is to
        spend otherwise-idle time pushing past what admission could afford;
        the session consumes it one :attr:`poll_iterations` slice at a time.
        """
        if self.online_search is not None:
            return self.online_search
        return dataclasses.replace(
            self.search,
            max_iterations=max(1, self.search.max_iterations * 4),
            time_budget_s=self.search.time_budget_s * 4.0,
        )


@dataclass(slots=True)
class _Segment:
    """One contiguous running stretch of a job, for the merged Chrome trace."""

    job: str
    partition: str
    start: float
    switch_seconds: float
    iter_seconds: float
    profile: IterationProfile
    start_iteration: int
    end: Optional[float] = None
    end_iteration: Optional[int] = None


class ClusterScheduler:
    """Multiplex concurrent RLHF jobs over one shared cluster."""

    def __init__(
        self,
        cluster: ClusterSpec,
        jobs: Sequence[JobSpec],
        policy: Union[str, SchedulingPolicy] = "best_throughput",
        config: Optional[SchedulerConfig] = None,
        service: Optional[PlanService] = None,
        failures: Sequence[NodeFailure] = (),
        trace_path: Optional[str] = None,
        metrics_path: Optional[str] = None,
        provenance_path: Optional[str] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        names = [spec.name for spec in jobs]
        if len(set(names)) != len(names):
            raise ValueError(f"job names must be unique, got {sorted(names)}")
        for spec in jobs:
            if spec.min_gpus > cluster.n_gpus:
                raise ValueError(
                    f"job {spec.name!r} needs >= {spec.min_gpus} GPUs but the "
                    f"cluster has {cluster.n_gpus}"
                )
        self.cluster = cluster
        self.policy = get_policy(policy)
        self.config = config if config is not None else SchedulerConfig()
        self._owns_service = service is None
        self.service = service if service is not None else PlanService(
            max_workers=4, estimator_cache_size=32
        )
        self.failures = list(failures)
        self.trace_path = trace_path
        self.metrics_path = metrics_path
        self.provenance_path = provenance_path
        self.registry = registry if registry is not None else get_registry()
        # The tracer and ledger are process-global (a shared service keeps
        # recording across runs); baselines turn them into per-run deltas.
        self._tracer = get_tracer()
        self._trace_baseline = self._tracer.n_records
        self._ledger = get_ledger()
        self._ledger_baseline = self._ledger.n_events
        self.jobs = [Job.from_spec(spec) for spec in jobs]
        self.manager = PartitionManager(cluster)
        self.costing = PlanCosting(
            service=self.service,
            search=self.config.search,
            replan_search=self.config.resolved_replan_search(),
            prune=self.config.prune,
            registry=self.registry,
            memoize=self.config.memoize_candidates,
        )
        self.profiler = IterationProfiler()
        self.migration = MigrationCostModel(cluster)
        self.kernel = SimKernel()
        self._queue: List[Job] = []
        self._timeline: List[Dict[str, object]] = []
        self._timeline_enabled = self.config.timeline
        self._segments: List[_Segment] = []
        self._open_segments: Dict[int, _Segment] = {}
        # Running-set index and per-event report aggregates: every value the
        # end-of-run report needs is maintained O(1) at the event that changes
        # it, so neither the hot loop nor the report ever scans all jobs.
        # ``legacy_report()`` keeps the original scans as the parity oracle.
        self._running_jobs: Dict[int, Job] = {}
        self._iterations_total = 0.0
        self._n_completed = 0
        self._last_completion = 0.0
        self._min_arrival = min(
            (job.spec.arrival_time for job in self.jobs), default=0.0
        )
        self._n_open_sessions = 0
        self._n_swaps_taken = 0
        self._n_failures = 0
        self._n_recoveries = 0
        self._busy_until = 0.0
        self._capacity_dirty = False
        self._n_search_polls = 0
        self._n_swaps_rejected = 0
        self._n_sessions_started = 0
        self._swap_seconds_saved = 0.0
        self._poll_event: Optional[Event] = None
        self._bg_workers = max(
            1, int(self.service.core_budget.total * self.config.bg_core_share)
        )
        self._obs_log = get_logger("sched")
        self._m_timeline = self.registry.counter(
            "sched_timeline_events_total",
            "Scheduler timeline entries by event kind",
            labels=("event",),
        )
        self._m_running = self.registry.gauge(
            "sched_running_jobs", "Jobs currently running (last kernel timestamp)"
        )
        self._m_queued = self.registry.gauge(
            "sched_queued_jobs", "Jobs currently queued (last kernel timestamp)"
        )
        self._m_free_gpus = self.registry.gauge(
            "sched_free_gpus", "Unallocated healthy GPUs (last kernel timestamp)"
        )
        self._m_utilization = self.registry.gauge(
            "sched_gpu_utilization", "Allocated fraction of healthy GPUs"
        )
        self._m_polls = self.registry.counter(
            "sched_search_polls_total",
            "Background search slices consumed by online sessions",
        )
        self._m_swaps = self.registry.counter(
            "sched_swaps_total",
            "Hot plan swap decisions at iteration boundaries",
            labels=("outcome",),
        )
        self._m_swap_saved = self.registry.histogram(
            "sched_swap_net_seconds_saved",
            "Estimated net seconds saved by one taken hot swap",
        )
        # Live counter tracks for the merged Chrome trace, sampled in virtual
        # time at every dirty drained kernel timestamp — or, with a counter
        # interval configured, at most once per interval of virtual time.
        self._counter_samples: List[Tuple[float, Dict[str, float]]] = []
        self._counter_interval = self.config.counter_interval_s
        self._last_counter_sample = float("-inf")

    # ------------------------------------------------------------------ #
    # Event plumbing
    # ------------------------------------------------------------------ #
    def _push(self, time: float, kind: str, payload: object) -> Event:
        return self.kernel.schedule(time, kind, payload, priority=_PRIORITY[kind])

    def _log(self, time: float, event: str, job: Optional[Job], detail: str) -> None:
        if not self._timeline_enabled:
            return
        self._timeline.append(
            {
                "time": round(time, 4),
                "event": event,
                "job": job.name if job is not None else None,
                "detail": detail,
            }
        )
        self._m_timeline.labels(event=event).inc()
        self._obs_log.debug(
            "t=%.4f %s%s: %s",
            time,
            event,
            f" {job.name}" if job is not None else "",
            detail,
        )

    def _running(self) -> List[Job]:
        """Running jobs in submission (uid) order, from the running-set index.

        Uids ascend in ``self.jobs`` order, so sorting by uid reproduces the
        order the old all-jobs scan yielded — policies iterate this list, so
        the order is behaviour, not cosmetics.
        """
        running = self._running_jobs
        if not running:
            return []
        return sorted(running.values(), key=lambda job: job.uid)

    def _accrue(self, job: Job, time: float) -> None:
        """Bank a job's GPU time and extend the busy horizon."""
        job.accrue_gpu_time(time)
        self._busy_until = max(self._busy_until, time)

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(self) -> ScheduleReport:
        """Simulate the whole trace and return the schedule report."""
        for job in self.jobs:
            self._push(job.spec.arrival_time, _ARRIVAL, job)
        for failure in self.failures:
            self._push(failure.time, _FAILURE, failure.node)
            if failure.recovery_time is not None:
                self._push(failure.recovery_time, _RECOVERY, failure.node)
        handlers = {
            _ARRIVAL: self._handle_arrival,
            _ITERATION: self._handle_iteration,
            _FAILURE: self._handle_failure,
            _RECOVERY: self._handle_recovery,
            _SEARCH_POLL: self._handle_search_poll,
        }
        try:
            # All events of one timestamp drain before scheduling decisions,
            # so e.g. a simultaneous arrival is not starved by an elastic
            # resize triggered a moment "earlier".  Iteration boundaries that
            # free no capacity leave the dirty flag unset and skip dispatch.
            self.kernel.run(
                lambda event: handlers[event.kind](event.time, event.payload),
                on_timestamp_drained=self._after_timestamp,
            )
        finally:
            for job in self.jobs:
                self._stop_session(job)
            if self._owns_service:
                self.service.close()
        report = self._report()
        if self.trace_path is not None:
            report.trace_path = str(self.export_chrome_trace(self.trace_path))
        provenance_path = self._resolved_provenance_path()
        if provenance_path is not None and self._ledger.enabled:
            report.provenance_path = str(
                self._ledger.write_jsonl(provenance_path, since=self._ledger_baseline)
            )
        metrics_path = self._resolved_metrics_path()
        if metrics_path is not None and self.registry.enabled:
            report.metrics_path = str(
                write_metrics_snapshot(
                    self.registry,
                    metrics_path,
                    extra={
                        "source": "ClusterScheduler",
                        "policy": self.policy.name,
                        "cluster_gpus": self.cluster.n_gpus,
                        "n_jobs": len(self.jobs),
                        "makespan": report.makespan,
                    },
                )
            )
        return report

    def _resolved_metrics_path(self) -> Optional[str]:
        """Where to write the ``METRICS_*.json`` snapshot (``None``: nowhere).

        Explicit ``metrics_path`` wins; otherwise a trace-exporting run puts
        ``METRICS_<trace stem>.json`` next to its Chrome trace, so the two
        artifacts of one run travel together.
        """
        if self.metrics_path is not None:
            return self.metrics_path
        if self.trace_path is not None:
            trace = Path(self.trace_path)
            return str(trace.with_name(f"METRICS_{trace.stem}.json"))
        return None

    def _resolved_provenance_path(self) -> Optional[str]:
        """Where the ``PROVENANCE_*.jsonl`` ledger lands (``None``: nowhere).

        Same convention as the metrics snapshot: explicit ``provenance_path``
        wins, otherwise a trace-exporting run writes
        ``PROVENANCE_<trace stem>.jsonl`` next to its Chrome trace.
        """
        if self.provenance_path is not None:
            return self.provenance_path
        if self.trace_path is not None:
            trace = Path(self.trace_path)
            return str(trace.with_name(f"PROVENANCE_{trace.stem}.jsonl"))
        return None

    def _after_timestamp(self, time: float) -> None:
        if self._capacity_dirty:
            self._capacity_dirty = False
            self._dispatch(time)
            # Utilization only changes when dispatch ran (placements,
            # displacements, capacity changes), so sampling here captures
            # every step of the counter tracks without per-event cost.  A
            # configured interval throttles the samples further, bounding the
            # in-memory series by the horizon instead of the event count.
            if time - self._last_counter_sample >= self._counter_interval:
                self._last_counter_sample = time
                self._sample_counters(time)

    def _sample_counters(self, time: float) -> None:
        """One virtual-time sample of the live cluster state.

        Feeds both the registry gauges (latest value) and the Chrome-trace
        counter tracks (full time series) from a single measurement.
        """
        n_running = len(self._running_jobs)
        n_queued = len(self._queue)
        n_free = self.manager.n_free
        n_available = self.manager.n_available
        busy = n_available - n_free
        utilization = busy / n_available if n_available else 0.0
        self._m_running.set(n_running)
        self._m_queued.set(n_queued)
        self._m_free_gpus.set(n_free)
        self._m_utilization.set(utilization)
        service_delta = self.costing.service_stats_delta()
        self._counter_samples.append(
            (
                time,
                {
                    "running jobs": float(n_running),
                    "queued jobs": float(n_queued),
                    "free GPUs": float(n_free),
                    "busy GPUs": float(busy),
                    "GPU utilization": utilization,
                    "plan cache hit ratio": service_delta.hit_rate,
                    "plan search seconds": service_delta.search_seconds,
                    "online sessions": float(self._n_open_sessions),
                    "plan swaps": float(self._n_swaps_taken),
                },
            )
        )

    # ------------------------------------------------------------------ #
    # Event handlers
    # ------------------------------------------------------------------ #
    def _handle_arrival(self, time: float, job: Job) -> None:
        self._queue.append(job)
        self._capacity_dirty = True
        self._log(time, "arrival", job, f"priority {job.spec.priority}")

    def _handle_iteration(self, time: float, payload: object) -> None:
        job, generation = payload
        if job.generation != generation or not job.is_running:
            return  # stale event from before a displacement
        self._accrue(job, time)
        job.iterations_done += 1.0
        self._iterations_total += 1.0
        if job.iterations_done >= job.spec.target_iterations:
            self._complete(job, time)
        else:
            if self._maybe_swap(job, time):
                return  # _start_segment armed the next boundary
            job.iteration_started_at = time
            job.pending_event = self._push(
                time + job.seconds_per_iteration, _ITERATION, (job, job.generation)
            )

    def _complete(self, job: Job, time: float) -> None:
        self._stop_session(job)
        job.phase = JobPhase.COMPLETED
        self._running_jobs.pop(job.uid, None)
        job.completed_at = time
        if not self._n_completed or time > self._last_completion:
            self._last_completion = time
        self._n_completed += 1
        job.segment_started_at = None
        job.pending_event = None
        self._close_segment(job, time)
        self.manager.release(job.uid)
        self._capacity_dirty = True
        self._log(time, "completion", job, f"{job.iterations_done:.1f} iterations")
        job.partition = None

    def _handle_failure(self, time: float, node: int) -> None:
        self._n_failures += 1
        failed_ids = self.manager.fail_node(node)
        self._capacity_dirty = True
        self._log(time, "failure", None, f"node {node} down")
        for job in self._running():
            if job.partition is not None and job.partition.device_id_set & failed_ids:
                self._displace(job, time, reason="failure")

    def _handle_recovery(self, time: float, node: int) -> None:
        self._n_recoveries += 1
        self.manager.restore_node(node)
        self._capacity_dirty = True
        self._log(time, "recovery", None, f"node {node} back")

    # ------------------------------------------------------------------ #
    # Online re-planning: background sessions and hot swaps
    # ------------------------------------------------------------------ #
    def _maybe_start_session(self, job: Job, time: float) -> None:
        """Open a background search for a freshly (re)planned running job.

        The session searches the job's *current* partition with the generous
        online budget, seeded from the active plan (so ``best_so_far`` can
        only be at least as good); nearly-finished jobs skip it — nothing
        left to amortise a swap over.
        """
        if not self.config.online_replanning:
            return
        if job.partition is None or job.plan is None or job.session is not None:
            return
        if job.remaining_iterations < 2:
            return
        search = dataclasses.replace(
            self.config.resolved_online_search(), initial_plan=job.plan
        )
        request = PlanRequest(
            graph=job.graph,
            workload=job.workload,
            cluster=job.partition.spec,
            search=search,
            prune=self.config.prune,
        )
        job.session = self.service.start_session(
            request,
            slice_iterations=self.config.poll_iterations,
            max_workers=self._bg_workers,
        )
        self._n_sessions_started += 1
        self._n_open_sessions += 1
        self._ensure_poll_scheduled(time)

    def _stop_session(self, job: Job) -> None:
        """Settle and unregister a job's background session (idempotent)."""
        session = job.session
        if session is None:
            return
        job.session = None
        self._n_open_sessions -= 1
        try:
            self.service.stop_session(session.session_id)
        except KeyError:
            # Already unregistered (e.g. the service was shut down first).
            session.stop()

    def _ensure_poll_scheduled(self, time: float) -> None:
        if self._poll_event is not None:
            return
        interval = max(self.config.poll_interval_s, 1e-6)
        self._poll_event = self._push(time + interval, _SEARCH_POLL, None)

    def _handle_search_poll(self, time: float, _payload: object) -> None:
        """Advance every running job's background search by one slice.

        Reschedules itself only while some session still has budget left, so
        the simulation always terminates once the searches run dry.
        """
        self._poll_event = None
        any_active = False
        for job in self._running():
            session = job.session
            if session is None or session.closed or session.done:
                continue
            session.poll()
            self._n_search_polls += 1
            self._m_polls.inc()
            if not session.done:
                any_active = True
        if any_active:
            self._ensure_poll_scheduled(time)

    def _maybe_swap(self, job: Job, time: float) -> bool:
        """Hot-swap to the session's best plan at an iteration boundary.

        The decision charges the real parameter-switch cost: with ``r``
        iterations remaining, the candidate's effective iteration time is
        ``cost + switch / r``, and the swap is taken only when the current
        planned iteration time exceeds that by ``swap_margin``.  Taking it
        cuts the segment (stopping the old session), restarts on the same
        partition with the new plan, and opens a fresh session seeded from
        it — so the timeline, trace and counters all see the swap.
        """
        session = job.session
        if session is None or session.closed:
            return False
        plan, cost = session.best_so_far()
        planned = job.planned_seconds_per_iteration
        if plan is None or cost <= 0 or not cost < planned:
            return False
        remaining = job.remaining_iterations
        if remaining < 1:
            return False
        if job.plan is not None and plan.to_dict() == job.plan.to_dict():
            return False
        switch = self.migration.switch_seconds(
            job, job.partition, job.plan, job.partition, plan
        )
        effective = cost + switch / remaining
        ratio = planned / effective if effective > 0 else 0.0
        if effective <= 0 or ratio < self.config.swap_margin:
            self._n_swaps_rejected += 1
            self._m_swaps.labels(outcome="rejected").inc()
            self._ledger.record(
                "swap",
                outcome="rejected",
                job=job.name,
                time=time,
                planned=planned,
                cost=cost,
                switch=switch,
                remaining=remaining,
                effective=effective,
                ratio=ratio,
                threshold=self.config.swap_margin,
            )
            return False
        saved = remaining * (planned - cost) - switch
        partition = job.partition
        # The swap span grafts under the session poll that found the winning
        # plan, closing the causal loop from the scheduler decision back to
        # the background search slice.
        with self._tracer.start_span(
            "plan swap",
            category="sched",
            parent=session.winning_poll_context,
            args={"job": job.name, "saved": saved, "ratio": ratio},
        ):
            self._cut_segment(job, time)
            charged = self._start_segment(job, partition, plan, cost, time)
        self._ledger.record(
            "swap",
            outcome="taken",
            job=job.name,
            time=time,
            planned=planned,
            cost=cost,
            switch=switch,
            remaining=remaining,
            effective=effective,
            ratio=ratio,
            threshold=self.config.swap_margin,
            saved=saved,
        )
        job.n_swaps += 1
        self._n_swaps_taken += 1
        self._swap_seconds_saved += saved
        self._m_swaps.labels(outcome="taken").inc()
        self._m_swap_saved.observe(saved)
        detail = (
            f"{job.seconds_per_iteration:.2f} s/iter "
            f"(planned {cost:.2f}, was {planned:.2f}, ~{saved:.1f} s saved)"
        )
        if charged > 0:
            detail += f", {charged:.2f} s param switch"
        self._log(time, "swap", job, detail)
        return True

    def _cut_segment(self, job: Job, time: float) -> None:
        """Shared teardown of a running segment (displacement or migration).

        Banks the GPU time, closes the trace segment, invalidates the
        pending iteration event and remembers the located layout that
        migration costs will be charged against.  The in-flight iteration is
        lost — progress is iteration-granular.
        """
        self._stop_session(job)
        self._accrue(job, time)
        self._close_segment(job, time)
        if job.pending_event is not None:
            self.kernel.cancel(job.pending_event)
            job.pending_event = None
        job.generation += 1
        job.prev_partition = job.partition
        job.prev_plan = job.plan

    def _displace(self, job: Job, time: float, reason: str) -> None:
        """Cut a running job's segment and send it back to the queue.

        The timeline names the interrupted intra-iteration phase.  After a
        node failure the resident parameter copy is gone, so the eventual
        re-placement pays a full reload instead of a relayout.
        """
        phase = job.current_phase(time)
        self._cut_segment(job, time)
        if reason == "failure":
            job.lost_params = True
        self.manager.release(job.uid)
        job.partition = None
        job.plan = None
        job.profile = None
        job.seconds_per_iteration = float("inf")
        job.planned_seconds_per_iteration = float("inf")
        job.segment_started_at = None
        job.iteration_started_at = None
        job.phase = JobPhase.PENDING
        self._running_jobs.pop(job.uid, None)
        if reason == "preemption":
            job.n_preemptions += 1
        self._queue.append(job)
        self._capacity_dirty = True
        self._log(
            time,
            "displaced",
            job,
            f"{reason} during {phase} "
            f"(iteration {int(job.iterations_done) + 1} lost)",
        )

    # ------------------------------------------------------------------ #
    # Dispatch: placements, preemptions, elastic resizes
    # ------------------------------------------------------------------ #
    def _dispatch(self, time: float) -> None:
        while True:
            for _ in range(self.config.max_dispatch_rounds):
                decision = self.policy.decide(
                    self._queue, self._running(), self.manager, self.costing
                )
                if decision.preemptions:
                    for victim in decision.preemptions:
                        self._displace(victim, time, reason="preemption")
                    continue
                if decision.placement is None:
                    break
                self._place(decision.placement, time)
            # Dropping a hopeless job may unblock jobs queued behind it
            # (head-of-line policies), so dispatch again after a drop.
            if not self._drop_unplaceable(time):
                break
        if self.config.elastic and self.policy.allows_resize and not self._queue:
            self._try_resizes(time)

    def _start_segment(
        self,
        job: Job,
        partition: Partition,
        plan: ExecutionPlan,
        planned_seconds_per_iteration: float,
        time: float,
    ) -> float:
        """Begin a running segment: profile, charge migration, arm the clock.

        The single entry point for *every* active-plan change (placement,
        elastic resize, hot swap), so ``job.planned_seconds_per_iteration`` —
        the baseline resize and swap decisions compare against — always
        reflects the plan actually running.  Returns the parameter-switch
        seconds charged ahead of the first iteration.
        """
        profile = self.profiler.profile(job, partition, plan)
        switch = self.migration.switch_seconds(
            job, job.prev_partition, job.prev_plan, partition, plan,
            lost_params=job.lost_params,
        )
        job.lost_params = False
        job.partition = partition
        job.plan = plan
        job.profile = profile
        job.seconds_per_iteration = profile.seconds_per_iteration
        job.planned_seconds_per_iteration = planned_seconds_per_iteration
        job.phase = JobPhase.RUNNING
        self._running_jobs[job.uid] = job
        job.segment_started_at = time
        job.switch_seconds += switch
        job.iteration_started_at = time + switch
        job.pending_event = self._push(
            time + switch + profile.seconds_per_iteration,
            _ITERATION,
            (job, job.generation),
        )
        segment = _Segment(
            job=job.name,
            partition=partition.describe(),
            start=time,
            switch_seconds=switch,
            iter_seconds=profile.seconds_per_iteration,
            profile=profile,
            start_iteration=int(job.iterations_done),
        )
        self._segments.append(segment)
        self._open_segments[job.uid] = segment
        self._maybe_start_session(job, time)
        return switch

    def _close_segment(self, job: Job, time: float) -> None:
        segment = self._open_segments.pop(job.uid, None)
        if segment is not None:
            segment.end = time
            segment.end_iteration = int(job.iterations_done)

    def _place(self, candidate: Candidate, time: float) -> None:
        job = candidate.job
        self._queue.remove(job)
        self.manager.allocate(candidate.partition, job.uid)
        switch = self._start_segment(
            job, candidate.partition, candidate.plan,
            candidate.seconds_per_iteration, time,
        )
        replanned = job.first_started_at is not None
        if replanned:
            job.n_replans += 1
        else:
            job.first_started_at = time
        kind = "replan" if replanned else "placement"
        stats = candidate.stats
        self._ledger.record(
            "placement",
            job=job.name,
            time=time,
            decision=kind,
            policy=self.policy.name,
            partition=candidate.partition.describe(),
            cost=candidate.seconds_per_iteration,
            switch=switch,
            lineage=stats.outcome if stats is not None else "unknown",
            fingerprint=stats.fingerprint if stats is not None else None,
            seeded_from=stats.seeded_from if stats is not None else None,
        )
        detail = (
            f"{candidate.partition.describe()}, "
            f"{job.seconds_per_iteration:.2f} s/iter"
        )
        if switch > 0:
            detail += f", {switch:.2f} s param switch"
        self._log(time, kind, job, detail)

    def _drop_unplaceable(self, time: float) -> bool:
        """Give up on jobs no partition of the fully idle cluster can host.

        Only triggers when nothing is running, nothing is failed and the
        queue still cannot drain — i.e. waiting longer cannot help.  Without
        this valve an infeasible job would leave the whole report pending.
        Returns whether any job was dropped.
        """
        if not self._queue or self._running() or self.manager.failed_ids:
            return False
        dropped = False
        for job in list(self._queue):
            shapes = self.manager.distinct_shapes(job.spec.min_gpus, job.spec.gpu_ceiling)
            if any(c.feasible for c in self.costing.score_one(job, shapes)):
                continue
            self._queue.remove(job)
            job.phase = JobPhase.UNPLACEABLE
            dropped = True
            self._log(time, "unplaceable", job, "no feasible partition on idle cluster")
        return dropped

    def _try_resizes(self, time: float) -> None:
        """Grow running jobs onto free capacity when re-planning pays off.

        Candidates are compared on the estimator's iterations/sec (the cost
        model the search optimised) against the job's current *planned*
        throughput, so the threshold compares like with like; the accepted
        migration is then profiled through the engine and charged its real
        parameter-movement cost like any other switch.
        """
        for job in self._running():
            if job.partition is None or job.spec.gpu_ceiling <= job.partition.n_gpus:
                continue
            own_ids = self.manager.owner_ids(job.uid)
            shapes = [
                shape
                for shape in self.manager.distinct_shapes(
                    job.partition.n_gpus + 1, job.spec.gpu_ceiling, extra_free=own_ids
                )
                if shape.n_gpus > job.partition.n_gpus
            ]
            if not shapes:
                continue
            feasible = [c for c in self.costing.score_one(job, shapes) if c.feasible]
            if not feasible:
                continue
            best = max(feasible, key=lambda c: c.iterations_per_second)
            if best.iterations_per_second <= job.planned_throughput * self.config.resize_threshold:
                continue
            # Migrate: close the current segment (the in-flight iteration is
            # lost), move the parameters, restart on the bigger partition.
            self._cut_segment(job, time)
            self.manager.release(job.uid)
            self.manager.allocate(best.partition, job.uid)
            switch = self._start_segment(
                job, best.partition, best.plan, best.seconds_per_iteration, time
            )
            job.n_resizes += 1
            detail = (
                f"grew to {best.partition.describe()}, "
                f"{job.seconds_per_iteration:.2f} s/iter"
            )
            if switch > 0:
                detail += f", {switch:.2f} s param switch"
            self._log(time, "resize", job, detail)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def _job_metrics(self) -> List[JobMetrics]:
        return [
            JobMetrics(
                name=job.name,
                priority=job.spec.priority,
                arrival_time=job.spec.arrival_time,
                first_started_at=job.first_started_at,
                completed_at=job.completed_at,
                iterations=job.iterations_done,
                n_replans=job.n_replans,
                n_preemptions=job.n_preemptions,
                n_resizes=job.n_resizes,
                gpu_seconds=job.gpu_seconds,
                phase=job.phase.value,
                n_swaps=job.n_swaps,
            )
            for job in self.jobs
        ]

    def _report(self) -> ScheduleReport:
        """Build the report from the per-event aggregates (no job scans).

        ``makespan``/``total_iterations`` come from values maintained O(1)
        at the event that changed them; :meth:`legacy_report` recomputes the
        same report with the original end-of-run scans and the two must be
        bit-identical (``total_iterations`` increments by exactly 1.0, so
        incremental and per-job summation are both exact;
        ``total_switch_seconds`` is summed in job order in both paths
        because chronological float accumulation could drift by ulps).
        """
        start = self._min_arrival
        makespan = (self._last_completion - start) if self._n_completed else 0.0
        return ScheduleReport(
            policy=self.policy.name,
            cluster_gpus=self.cluster.n_gpus,
            jobs=self._job_metrics(),
            makespan=makespan,
            busy_horizon=max(0.0, self._busy_until - start),
            total_iterations=self._iterations_total,
            n_failures=self._n_failures,
            n_recoveries=self._n_recoveries,
            candidates_scored=self.costing.candidates_scored,
            cold_searches=self.costing.cold_stats,
            replan_searches=self.costing.replan_stats,
            service_stats=self._service_stats_delta(),
            timeline=self._timeline,
            n_events=self.kernel.n_processed,
            engine_profile_runs=self.profiler.engine_runs,
            total_switch_seconds=sum(job.switch_seconds for job in self.jobs),
            n_search_polls=self._n_search_polls,
            n_swaps_rejected=self._n_swaps_rejected,
            swap_seconds_saved=self._swap_seconds_saved,
            online_sessions=self._n_sessions_started,
        )

    def legacy_report(self) -> ScheduleReport:
        """The original end-of-run-scan report: the parity oracle.

        Recomputes every aggregate by scanning all jobs, exactly as the
        pre-incremental implementation did.  Kept so tests can assert the
        per-event aggregation in :meth:`_report` is bit-identical on any
        finished run.
        """
        job_metrics = self._job_metrics()
        completions = [m.completed_at for m in job_metrics if m.completed_at is not None]
        arrivals = [m.arrival_time for m in job_metrics]
        start = min(arrivals) if arrivals else 0.0
        makespan = (max(completions) - start) if completions else 0.0
        return ScheduleReport(
            policy=self.policy.name,
            cluster_gpus=self.cluster.n_gpus,
            jobs=job_metrics,
            makespan=makespan,
            busy_horizon=max(0.0, self._busy_until - start),
            total_iterations=sum(m.iterations for m in job_metrics),
            n_failures=self._n_failures,
            n_recoveries=self._n_recoveries,
            candidates_scored=self.costing.candidates_scored,
            cold_searches=self.costing.cold_stats,
            replan_searches=self.costing.replan_stats,
            service_stats=self._service_stats_delta(),
            timeline=self._timeline,
            n_events=self.kernel.n_processed,
            engine_profile_runs=self.profiler.engine_runs,
            total_switch_seconds=sum(job.switch_seconds for job in self.jobs),
            n_search_polls=self._n_search_polls,
            n_swaps_rejected=self._n_swaps_rejected,
            swap_seconds_saved=self._swap_seconds_saved,
            online_sessions=self._n_sessions_started,
        )

    def _service_stats_delta(self) -> Dict[str, float]:
        """This run's share of the (possibly shared) service's counters.

        A shared service accumulates across runs; the costing's baseline
        snapshot (taken at construction) turns the cumulative counters into
        this run's delta, with the hit rate recomputed from the delta.
        """
        return self.costing.service_stats_delta().to_dict()

    # ------------------------------------------------------------------ #
    # Unified trace export
    # ------------------------------------------------------------------ #
    def record_chrome(self, recorder: TraceRecorder) -> None:
        """Emit the run into a recorder: cluster events + per-job phases.

        One merged trace: a ``cluster`` process carries the decision-level
        timeline as instant events plus live counter tracks (running/queued
        jobs, free/busy GPUs, utilization, plan-cache hit ratio, search
        seconds); each job gets a process with its running segments,
        parameter-switch windows, iteration spans and — inside every
        completed iteration — the engine-profiled call phases.

        When tracing is on, the run's causal span tree (decision waves →
        plan requests → search chains, plus session polls and swaps) merges
        in as async events with flow arrows on a ``planning`` process.
        """
        self._tracer.record_chrome(recorder, since=self._trace_baseline)
        record_counter_tracks(recorder, "cluster", self._counter_samples)
        for entry in self._timeline:
            label = entry["event"] if entry["job"] is None else f"{entry['event']}: {entry['job']}"
            recorder.add_instant(
                "cluster",
                "events",
                label,
                float(entry["time"]),
                category=str(entry["event"]),
                args={"detail": entry["detail"]},
            )
        for segment in self._segments:
            process = f"job {segment.job}"
            end = segment.end if segment.end is not None else self._busy_until
            recorder.add_span(
                process, "segments", segment.partition, segment.start, end,
                category="segment",
            )
            if segment.switch_seconds > 0:
                # A segment cut inside its switch-in window ends before the
                # switch would have finished; clamp so the drawn span never
                # outlives the segment.
                recorder.add_span(
                    process, "segments", "param switch", segment.start,
                    min(segment.start + segment.switch_seconds, end),
                    category="switch",
                )
            first_boundary = segment.start + segment.switch_seconds
            end_iteration = (
                segment.end_iteration
                if segment.end_iteration is not None
                else segment.start_iteration
            )
            for k in range(end_iteration - segment.start_iteration):
                base = first_boundary + k * segment.iter_seconds
                recorder.add_span(
                    process, "iterations", f"iter {segment.start_iteration + k}",
                    base, base + segment.iter_seconds, category="iteration",
                )
                for call, (span_start, span_end) in sorted(segment.profile.call_spans.items()):
                    recorder.add_span(
                        process, call, call, base + span_start, base + span_end,
                        category="phase",
                    )

    def export_chrome_trace(self, path: str) -> str:
        """Write the merged Chrome trace of this run; returns the path."""
        recorder = TraceRecorder()
        self.record_chrome(recorder)
        return str(recorder.save(path))


def schedule_trace(
    cluster: ClusterSpec,
    jobs: Sequence[JobSpec],
    policy: Union[str, SchedulingPolicy] = "best_throughput",
    config: Optional[SchedulerConfig] = None,
    service: Optional[PlanService] = None,
    failures: Sequence[NodeFailure] = (),
    trace_path: Optional[str] = None,
    metrics_path: Optional[str] = None,
    provenance_path: Optional[str] = None,
) -> ScheduleReport:
    """Convenience wrapper: build a :class:`ClusterScheduler` and run it once."""
    scheduler = ClusterScheduler(
        cluster=cluster,
        jobs=jobs,
        policy=policy,
        config=config,
        service=service,
        failures=failures,
        trace_path=trace_path,
        metrics_path=metrics_path,
        provenance_path=provenance_path,
    )
    return scheduler.run()
