"""Discrete-event multi-job scheduler over one shared GPU cluster.

:class:`ClusterScheduler` admits a stream of RLHF training jobs
(:class:`~repro.sched.job.JobSpec`) onto a shared
:class:`~repro.cluster.hardware.ClusterSpec` and simulates the cluster in
virtual time.  The event loop covers:

* **arrivals** — jobs join the queue at their arrival time;
* **completions** — a placed job finishes after ``target_iterations`` at the
  iteration time of its searched plan;
* **failures / recoveries** — injected whole-node failures displace every
  job whose partition touches the node; recoveries return the capacity;
* **elastic resizes** — when capacity frees up and the queue is empty,
  running jobs may migrate to larger partitions when the re-planned
  throughput gain clears a threshold.

Every placement is a full plan search over the partition's carved cluster,
served by the shared :class:`~repro.service.server.PlanService`: same-shaped
partitions are exact cache hits, and displaced jobs re-plan with a reduced
budget, warm-started from their own previously cached plans (same
fingerprint family) — cold planning happens once per (job type, shape).
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..cluster.hardware import ClusterSpec
from ..core.pruning import PruneConfig
from ..core.search import SearchConfig
from ..service.server import PlanService
from .costing import Candidate, PlanCosting
from .job import Job, JobPhase, JobSpec
from .metrics import JobMetrics, ScheduleReport
from .partition import PartitionManager
from .policies import SchedulingPolicy, get_policy

__all__ = ["NodeFailure", "SchedulerConfig", "ClusterScheduler", "schedule_trace"]

# Event kinds, in processing order within one timestamp: capacity changes
# first (failures take GPUs away, recoveries return them), then arrivals,
# then completions.
_FAILURE, _RECOVERY, _ARRIVAL, _COMPLETION = range(4)


@dataclass(frozen=True)
class NodeFailure:
    """An injected whole-node failure (optionally with a recovery time)."""

    time: float
    node: int
    recovery_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("failure time must be >= 0")
        if self.recovery_time is not None and self.recovery_time <= self.time:
            raise ValueError("recovery_time must be after the failure time")


@dataclass
class SchedulerConfig:
    """Knobs of the scheduling loop (search budgets, elasticity)."""

    search: SearchConfig = field(
        default_factory=lambda: SearchConfig(
            max_iterations=400, time_budget_s=2.0, record_history=False
        )
    )
    """Budget of cold placements (first search of a (job type, shape))."""
    replan_search: Optional[SearchConfig] = None
    """Budget of warm-started replans; defaults to a quarter of ``search``."""
    prune: PruneConfig = field(default_factory=PruneConfig)
    elastic: bool = True
    """Whether running jobs may grow onto freed capacity."""
    resize_threshold: float = 1.05
    """Minimum relative iterations/sec gain for an elastic migration."""
    max_dispatch_rounds: int = 256
    """Safety bound on placement/preemption rounds per event."""

    def resolved_replan_search(self) -> SearchConfig:
        if self.replan_search is not None:
            return self.replan_search
        return dataclasses.replace(
            self.search,
            max_iterations=max(1, self.search.max_iterations // 4),
            time_budget_s=self.search.time_budget_s / 4.0,
        )


class ClusterScheduler:
    """Multiplex concurrent RLHF jobs over one shared cluster."""

    def __init__(
        self,
        cluster: ClusterSpec,
        jobs: Sequence[JobSpec],
        policy: Union[str, SchedulingPolicy] = "best_throughput",
        config: Optional[SchedulerConfig] = None,
        service: Optional[PlanService] = None,
        failures: Sequence[NodeFailure] = (),
    ) -> None:
        names = [spec.name for spec in jobs]
        if len(set(names)) != len(names):
            raise ValueError(f"job names must be unique, got {sorted(names)}")
        for spec in jobs:
            if spec.min_gpus > cluster.n_gpus:
                raise ValueError(
                    f"job {spec.name!r} needs >= {spec.min_gpus} GPUs but the "
                    f"cluster has {cluster.n_gpus}"
                )
        self.cluster = cluster
        self.policy = get_policy(policy)
        self.config = config if config is not None else SchedulerConfig()
        self._owns_service = service is None
        self.service = service if service is not None else PlanService(
            max_workers=4, estimator_cache_size=32
        )
        self.failures = list(failures)
        self.jobs = [Job.from_spec(spec) for spec in jobs]
        self.manager = PartitionManager(cluster)
        self.costing = PlanCosting(
            service=self.service,
            search=self.config.search,
            replan_search=self.config.resolved_replan_search(),
            prune=self.config.prune,
        )
        self._queue: List[Job] = []
        self._events: List[Tuple[float, int, int, object]] = []
        self._seq = itertools.count()
        self._timeline: List[Dict[str, object]] = []
        self._n_failures = 0
        self._n_recoveries = 0
        self._busy_until = 0.0
        self._stats_baseline = self.service.stats.snapshot()

    # ------------------------------------------------------------------ #
    # Event plumbing
    # ------------------------------------------------------------------ #
    def _push(self, time: float, kind: int, payload: object) -> None:
        heapq.heappush(self._events, (time, kind, next(self._seq), payload))

    def _log(self, time: float, event: str, job: Optional[Job], detail: str) -> None:
        self._timeline.append(
            {
                "time": round(time, 4),
                "event": event,
                "job": job.name if job is not None else None,
                "detail": detail,
            }
        )

    def _running(self) -> List[Job]:
        return [job for job in self.jobs if job.is_running]

    def _accrue(self, job: Job, time: float) -> None:
        """Bank a job's running segment and extend the busy horizon."""
        job.accrue(time)
        self._busy_until = max(self._busy_until, time)

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #
    def run(self) -> ScheduleReport:
        """Simulate the whole trace and return the schedule report."""
        for job in self.jobs:
            self._push(job.spec.arrival_time, _ARRIVAL, job)
        for failure in self.failures:
            self._push(failure.time, _FAILURE, failure.node)
            if failure.recovery_time is not None:
                self._push(failure.recovery_time, _RECOVERY, failure.node)
        try:
            while self._events:
                # Drain every event of the current timestamp before making
                # scheduling decisions, so e.g. a simultaneous arrival is not
                # starved by an elastic resize triggered a moment "earlier".
                now = self._events[0][0]
                while self._events and self._events[0][0] == now:
                    time, kind, _, payload = heapq.heappop(self._events)
                    if kind == _ARRIVAL:
                        self._handle_arrival(time, payload)
                    elif kind == _COMPLETION:
                        self._handle_completion(time, payload)
                    elif kind == _FAILURE:
                        self._handle_failure(time, payload)
                    elif kind == _RECOVERY:
                        self._handle_recovery(time, payload)
                self._dispatch(now)
        finally:
            if self._owns_service:
                self.service.close()
        return self._report()

    # ------------------------------------------------------------------ #
    # Event handlers
    # ------------------------------------------------------------------ #
    def _handle_arrival(self, time: float, job: Job) -> None:
        self._queue.append(job)
        self._log(time, "arrival", job, f"priority {job.spec.priority}")

    def _handle_completion(self, time: float, payload: object) -> None:
        job, generation = payload
        if job.generation != generation or not job.is_running:
            return  # stale event from before a displacement
        self._accrue(job, time)
        job.phase = JobPhase.COMPLETED
        job.completed_at = time
        job.segment_started_at = None
        self.manager.release(job.uid)
        self._log(time, "completion", job, f"{job.iterations_done:.1f} iterations")
        job.partition = None

    def _handle_failure(self, time: float, node: int) -> None:
        self._n_failures += 1
        failed_ids = self.manager.fail_node(node)
        self._log(time, "failure", None, f"node {node} down")
        for job in self._running():
            if job.partition is not None and job.partition.device_id_set & failed_ids:
                self._displace(job, time, reason="failure")

    def _handle_recovery(self, time: float, node: int) -> None:
        self._n_recoveries += 1
        self.manager.restore_node(node)
        self._log(time, "recovery", None, f"node {node} back")

    def _displace(self, job: Job, time: float, reason: str) -> None:
        """Stop a running job's segment and send it back to the queue."""
        self._accrue(job, time)
        job.generation += 1
        self.manager.release(job.uid)
        job.partition = None
        job.plan = None
        job.seconds_per_iteration = float("inf")
        job.segment_started_at = None
        job.phase = JobPhase.PENDING
        if reason == "preemption":
            job.n_preemptions += 1
        self._queue.append(job)
        self._log(time, "displaced", job, reason)

    # ------------------------------------------------------------------ #
    # Dispatch: placements, preemptions, elastic resizes
    # ------------------------------------------------------------------ #
    def _dispatch(self, time: float) -> None:
        while True:
            for _ in range(self.config.max_dispatch_rounds):
                decision = self.policy.decide(
                    self._queue, self._running(), self.manager, self.costing
                )
                if decision.preemptions:
                    for victim in decision.preemptions:
                        self._displace(victim, time, reason="preemption")
                    continue
                if decision.placement is None:
                    break
                self._place(decision.placement, time)
            # Dropping a hopeless job may unblock jobs queued behind it
            # (head-of-line policies), so dispatch again after a drop.
            if not self._drop_unplaceable(time):
                break
        if self.config.elastic and self.policy.allows_resize and not self._queue:
            self._try_resizes(time)

    def _place(self, candidate: Candidate, time: float) -> None:
        job = candidate.job
        self._queue.remove(job)
        self.manager.allocate(candidate.partition, job.uid)
        job.partition = candidate.partition
        job.plan = candidate.plan
        job.seconds_per_iteration = candidate.seconds_per_iteration
        job.phase = JobPhase.RUNNING
        job.segment_started_at = time
        replanned = job.first_started_at is not None
        if replanned:
            job.n_replans += 1
        else:
            job.first_started_at = time
        self._schedule_completion(job, time)
        kind = "replan" if replanned else "placement"
        self._log(
            time,
            kind,
            job,
            f"{candidate.partition.describe()}, "
            f"{candidate.seconds_per_iteration:.2f} s/iter",
        )

    def _schedule_completion(self, job: Job, time: float) -> None:
        finish = time + job.remaining_iterations * job.seconds_per_iteration
        self._push(finish, _COMPLETION, (job, job.generation))

    def _drop_unplaceable(self, time: float) -> bool:
        """Give up on jobs no partition of the fully idle cluster can host.

        Only triggers when nothing is running, nothing is failed and the
        queue still cannot drain — i.e. waiting longer cannot help.  Without
        this valve an infeasible job would leave the whole report pending.
        Returns whether any job was dropped.
        """
        if not self._queue or self._running() or self.manager.failed_ids:
            return False
        dropped = False
        for job in list(self._queue):
            shapes = self.manager.distinct_shapes(job.spec.min_gpus, job.spec.gpu_ceiling)
            if any(c.feasible for c in self.costing.score_one(job, shapes)):
                continue
            self._queue.remove(job)
            job.phase = JobPhase.UNPLACEABLE
            dropped = True
            self._log(time, "unplaceable", job, "no feasible partition on idle cluster")
        return dropped

    def _try_resizes(self, time: float) -> None:
        """Grow running jobs onto free capacity when re-planning pays off."""
        for job in self._running():
            if job.partition is None or job.spec.gpu_ceiling <= job.partition.n_gpus:
                continue
            own_ids = self.manager.owner_ids(job.uid)
            shapes = [
                shape
                for shape in self.manager.distinct_shapes(
                    job.partition.n_gpus + 1, job.spec.gpu_ceiling, extra_free=own_ids
                )
                if shape.n_gpus > job.partition.n_gpus
            ]
            if not shapes:
                continue
            feasible = [c for c in self.costing.score_one(job, shapes) if c.feasible]
            if not feasible:
                continue
            best = max(feasible, key=lambda c: c.iterations_per_second)
            if best.iterations_per_second <= job.throughput * self.config.resize_threshold:
                continue
            # Migrate: close the current segment, move to the bigger partition.
            self._accrue(job, time)
            job.generation += 1
            self.manager.release(job.uid)
            self.manager.allocate(best.partition, job.uid)
            job.partition = best.partition
            job.plan = best.plan
            job.seconds_per_iteration = best.seconds_per_iteration
            job.segment_started_at = time
            job.n_resizes += 1
            self._schedule_completion(job, time)
            self._log(
                time,
                "resize",
                job,
                f"grew to {best.partition.describe()}, "
                f"{best.seconds_per_iteration:.2f} s/iter",
            )

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def _report(self) -> ScheduleReport:
        job_metrics = [
            JobMetrics(
                name=job.name,
                priority=job.spec.priority,
                arrival_time=job.spec.arrival_time,
                first_started_at=job.first_started_at,
                completed_at=job.completed_at,
                iterations=job.iterations_done,
                n_replans=job.n_replans,
                n_preemptions=job.n_preemptions,
                n_resizes=job.n_resizes,
                gpu_seconds=job.gpu_seconds,
                phase=job.phase.value,
            )
            for job in self.jobs
        ]
        completions = [m.completed_at for m in job_metrics if m.completed_at is not None]
        arrivals = [m.arrival_time for m in job_metrics]
        start = min(arrivals) if arrivals else 0.0
        makespan = (max(completions) - start) if completions else 0.0
        return ScheduleReport(
            policy=self.policy.name,
            cluster_gpus=self.cluster.n_gpus,
            jobs=job_metrics,
            makespan=makespan,
            busy_horizon=max(0.0, self._busy_until - start),
            total_iterations=sum(m.iterations for m in job_metrics),
            n_failures=self._n_failures,
            n_recoveries=self._n_recoveries,
            candidates_scored=self.costing.candidates_scored,
            cold_searches=self.costing.cold_stats,
            replan_searches=self.costing.replan_stats,
            service_stats=self._service_stats_delta(),
            timeline=self._timeline,
        )

    def _service_stats_delta(self) -> Dict[str, float]:
        """This run's share of the (possibly shared) service's counters.

        A shared service accumulates across runs; reporting the raw snapshot
        would attribute earlier runs' traffic to this schedule, so the
        baseline captured at construction is subtracted and the hit rate
        recomputed from the delta.
        """
        end = self.service.stats.snapshot().to_dict()
        base = self._stats_baseline.to_dict()
        delta = {key: end[key] - base[key] for key in end if key != "hit_rate"}
        delta["hit_rate"] = (
            delta["cache_hits"] / delta["requests"] if delta["requests"] else 0.0
        )
        return delta


def schedule_trace(
    cluster: ClusterSpec,
    jobs: Sequence[JobSpec],
    policy: Union[str, SchedulingPolicy] = "best_throughput",
    config: Optional[SchedulerConfig] = None,
    service: Optional[PlanService] = None,
    failures: Sequence[NodeFailure] = (),
) -> ScheduleReport:
    """Convenience wrapper: build a :class:`ClusterScheduler` and run it once."""
    scheduler = ClusterScheduler(
        cluster=cluster,
        jobs=jobs,
        policy=policy,
        config=config,
        service=service,
        failures=failures,
    )
    return scheduler.run()
