"""Engine-derived per-iteration phase profiles and migration costs.

The trace-driven scheduler does not advance jobs by a flat ``iters/s``
scalar: every placement runs one iteration of the searched plan through the
:class:`~repro.runtime.engine.RuntimeEngine` on the partition's carved
cluster and banks the result as an :class:`IterationProfile` — the true
iteration time (dispatch overheads, reallocation broadcasts and data
transfers included) plus the intra-iteration phase spans that the merged
Chrome trace and displacement bookkeeping are built from.

Profiles are cached by (workload, partition shape, plan): same-shaped
partitions pose byte-identical execution problems, so a trace of concurrent
jobs costs a handful of engine runs, mirroring how the plan service
collapses same-shaped searches.

:class:`MigrationCostModel` charges the *switching* cost of moving a running
job between partitions (elastic resize, preemption recovery, failure
replan): each model's parameters must be redistributed from their old
located layout to the new one, priced by
:class:`~repro.realloc.cost.ReallocCostModel` on the **parent** cluster —
so a same-node relayout is cheap, a cross-node migration pays inter-node
bandwidth, and a plain resume in place is free.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from ..cluster.hardware import ClusterSpec
from ..cluster.topology import DeviceMesh
from ..core.plan import Allocation, ExecutionPlan
from ..model.memory import PARAM_BYTES
from ..realloc.cost import ReallocCostModel
from .job import Job
from .partition import Partition

__all__ = ["IterationProfile", "IterationProfiler", "MigrationCostModel", "locate_allocation"]


@dataclass(frozen=True)
class IterationProfile:
    """One engine-simulated RLHF iteration of a (job, partition, plan) triple.

    ``call_spans`` are phase offsets *within* one iteration (seconds from the
    iteration start); the scheduler shifts them by each iteration's boundary
    to place phases on the cluster-level clock.
    """

    seconds_per_iteration: float
    call_spans: Mapping[str, Tuple[float, float]]
    realloc_seconds: float
    data_transfer_seconds: float

    def phase_at(self, offset_s: float) -> str:
        """Name of the call phase in flight ``offset_s`` into an iteration.

        Offsets outside every span (idle gaps, or past the end) report the
        nearest preceding phase; negative offsets report ``"startup"`` —
        the job was still in its switch-in (parameter loading) window.
        """
        if offset_s < 0:
            return "startup"
        current = "startup"
        best_start = -1.0
        for name, (start, end) in self.call_spans.items():
            if start <= offset_s and start > best_start:
                current = name
                best_start = start
        return current


class IterationProfiler:
    """Cached engine runs: (workload, partition shape, plan) -> profile."""

    def __init__(self) -> None:
        self._profiles: Dict[Tuple, IterationProfile] = {}
        self._engines: Dict[Tuple, object] = {}
        # id(plan) → (plan, canonical JSON key).  Plans are shared objects
        # (service cache hits return the same deserialized instance), so the
        # identity check makes repeated profiling of the same plan skip the
        # canonical-JSON dump — the profiler's per-call hot cost at fleet
        # scale.  Holding the plan itself keeps the id stable.
        self._plan_keys: Dict[int, Tuple[ExecutionPlan, str]] = {}
        self.engine_runs = 0

    @staticmethod
    def _workload_key(job: Job) -> Tuple:
        spec = job.spec
        return (
            spec.algorithm.lower(),
            spec.actor_size,
            spec.critic_size,
            spec.batch_size,
            spec.prompt_len,
            spec.gen_len,
            spec.n_ppo_minibatches,
        )

    def profile(self, job: Job, partition: Partition, plan: ExecutionPlan) -> IterationProfile:
        """The engine-derived iteration profile of running ``plan`` there."""
        workload_key = self._workload_key(job)
        entry = self._plan_keys.get(id(plan))
        if entry is not None and entry[0] is plan:
            plan_key = entry[1]
        else:
            plan_key = json.dumps(plan.to_dict(), sort_keys=True)
            self._plan_keys[id(plan)] = (plan, plan_key)
        key = (workload_key, partition.shape, plan_key)
        cached = self._profiles.get(key)
        if cached is not None:
            return cached

        from ..runtime.engine import RuntimeEngine  # local import avoids a cycle

        engine_key = (workload_key, partition.shape)
        engine = self._engines.get(engine_key)
        if engine is None:
            engine = RuntimeEngine(partition.spec, job.workload)
            self._engines[engine_key] = engine
        trace = engine.run_iteration(job.graph, plan)
        self.engine_runs += 1
        profile = IterationProfile(
            seconds_per_iteration=trace.total_seconds,
            call_spans=dict(trace.call_spans),
            realloc_seconds=trace.realloc_seconds,
            data_transfer_seconds=trace.data_transfer_seconds,
        )
        self._profiles[key] = profile
        return profile


def locate_allocation(alloc: Allocation, partition: Partition) -> Allocation:
    """Re-base an allocation from a partition's carved cluster onto its parent.

    Plans are searched on the location-erased carved spec; re-adding the
    partition's offsets yields the *located* mesh on the shared cluster,
    which is what makes migration costs real: the same layout on the same
    GPUs is free, while moving across nodes pays the inter-node fabric.
    """
    region = partition.region
    mesh = DeviceMesh(
        cluster=region.cluster,
        node_start=region.node_start + alloc.mesh.node_start,
        n_nodes=alloc.mesh.n_nodes,
        gpu_start=region.gpu_start + alloc.mesh.gpu_start,
        gpus_per_node=alloc.mesh.gpus_per_node,
    )
    return Allocation(
        mesh=mesh,
        parallel=alloc.parallel,
        n_microbatches=alloc.n_microbatches,
        zero3=alloc.zero3,
    )


class MigrationCostModel:
    """Real parameter-movement cost of switching a job between partitions."""

    def __init__(self, cluster: ClusterSpec) -> None:
        self.cluster = cluster
        self._realloc = ReallocCostModel(cluster, exact=False)

    def _fallback_seconds(self, job: Job) -> float:
        """Bandwidth bound when located meshes cannot be reconstructed."""
        ic = self.cluster.interconnect
        total = 0.0
        for model_name in job.graph.model_names():
            config = job.workload.model_config(model_name)
            total += config.param_count() * PARAM_BYTES / ic.inter_node_bandwidth
            total += ic.inter_node_latency_s
        return total

    def switch_seconds(
        self,
        job: Job,
        old_partition: Optional[Partition],
        old_plan: Optional[ExecutionPlan],
        new_partition: Partition,
        new_plan: ExecutionPlan,
        lost_params: bool = False,
    ) -> float:
        """Seconds to move the job's parameters to their new located layout.

        The layout of each model at an iteration boundary is its *first*
        call's allocation (the wrap-around reallocation edge restores it at
        the end of every iteration), so migration is one reallocation per
        model between the old and new located first-call layouts.  Cold
        placements (no previous plan) start immediately — parameter
        initialisation is outside the simulated window.  ``lost_params``
        (a node failure destroyed the resident copy) forces a full reload
        from checkpoint storage at inter-node bandwidth.
        """
        if old_partition is None or old_plan is None:
            return 0.0
        if lost_params:
            return self._fallback_seconds(job)
        total = 0.0
        for model_name in job.graph.model_names():
            first_call = job.graph.calls_of_model(model_name)[0].name
            if first_call not in old_plan or first_call not in new_plan:
                return self._fallback_seconds(job)
            config = job.workload.model_config(model_name)
            try:
                src = locate_allocation(old_plan[first_call], old_partition)
                dst = locate_allocation(new_plan[first_call], new_partition)
            except ValueError:
                return self._fallback_seconds(job)
            total += self._realloc.cost(config, src, dst).seconds
        return total
