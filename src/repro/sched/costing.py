"""Scoring (job, partition) candidates through the plan service.

Every scheduling decision — admission, packing, preemption recovery, elastic
resize — reduces to the same question: *how fast would this job run on that
partition?*  The answer comes from the existing
:class:`~repro.service.server.PlanService`: a candidate is a full planning
request over the partition's carved :class:`ClusterSpec`, so

* same-shaped partitions share the service's exact-key cache (scoring a
  hundred located candidates costs a handful of searches),
* displaced jobs are re-planned with warm starts from their own previously
  cached plans (same fingerprint family), and
* batches of candidates overlap on the service's worker pool.

The costing layer also keeps the request-statistics ledger the scheduler
report is built from: cold searches vs. warm-started/cached replans.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.plan import ExecutionPlan
from ..core.pruning import PruneConfig
from ..core.search import SearchConfig
from ..obs.metrics import MetricsRegistry, get_registry
from ..obs.provenance import get_ledger
from ..obs.tracing import get_tracer
from ..service.server import PlanRequest, PlanService, RequestStats, ServiceStats
from .job import Job
from .metrics import SearchTimeStats
from .partition import Partition

__all__ = ["Candidate", "PlanCosting"]


@dataclass(frozen=True)
class Candidate:
    """One scored (job, partition) placement option."""

    job: Job
    partition: Partition
    plan: Optional[ExecutionPlan]
    seconds_per_iteration: float
    feasible: bool
    stats: Optional[RequestStats] = None

    @property
    def iterations_per_second(self) -> float:
        if not self.feasible or self.seconds_per_iteration <= 0:
            return 0.0
        return 1.0 / self.seconds_per_iteration

    @property
    def throughput_density(self) -> float:
        """Iterations/sec per GPU — the packing score of a candidate."""
        return self.iterations_per_second / max(1, self.partition.n_gpus)


class PlanCosting:
    """Plan-service front end of the scheduler, with a stats ledger."""

    def __init__(
        self,
        service: PlanService,
        search: SearchConfig,
        replan_search: SearchConfig,
        prune: PruneConfig = PruneConfig(),
        registry: Optional[MetricsRegistry] = None,
        memoize: bool = False,
    ) -> None:
        self.service = service
        self.search = search
        self.replan_search = replan_search
        self.prune = prune
        self.memoize = memoize
        # (job planning identity, partition shape, replan?) → scored result.
        # The memo mirrors the service's exact-key cache — identical keys pose
        # byte-identical planning problems — but answers without a service
        # round trip (fingerprinting, locks, plan deserialization).  Gated off
        # by default because hits bypass the service's request statistics.
        self._memo: Dict[tuple, Tuple[Optional[ExecutionPlan], float, bool]] = {}
        self.candidates_scored = 0
        self._cold: List[RequestStats] = []
        self._replan: List[RequestStats] = []
        self._wave_seconds: List[float] = []
        self._wave_sizes: List[int] = []
        # The service may be shared across several schedulers/benchmark runs;
        # this baseline turns its cumulative counters into per-run deltas.
        # (A service-less costing is only used in unit tests of the ledger.)
        self._stats_baseline = (
            service.stats.snapshot() if service is not None else ServiceStats()
        )
        self.registry = registry if registry is not None else get_registry()
        self._m_decision = self.registry.histogram(
            "sched_decision_seconds",
            "Plan-costing latency of one scheduling decision (one wave)",
        )
        self._m_candidates = self.registry.counter(
            "sched_candidates_total", "(job, partition) candidates scored"
        )

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    def _request(self, job: Job, partition: Partition) -> PlanRequest:
        # Jobs that ran before are replans: they get the (smaller) warm-start
        # budget, since the service seeds their search from the job's own
        # previously cached plans of the same fingerprint family.
        search = self.replan_search if self._is_replan(job) else self.search
        return PlanRequest(
            graph=job.graph,
            workload=job.workload,
            cluster=partition.spec,
            search=search,
            prune=self.prune,
        )

    @staticmethod
    def _is_replan(job: Job) -> bool:
        return job.first_started_at is not None

    def _memo_key(self, job: Job, partition: Partition) -> tuple:
        spec = job.spec
        return (
            spec.algorithm.lower(),
            spec.actor_size,
            spec.critic_size,
            spec.batch_size,
            spec.prompt_len,
            spec.gen_len,
            spec.n_ppo_minibatches,
            partition.shape,
            self._is_replan(job),
        )

    def score(self, pairs: Sequence[Tuple[Job, Partition]]) -> List[Candidate]:
        """Score one *wave* of candidates; infeasible/failed ones stay in place.

        All requests are submitted before the first result is awaited, so
        novel shapes search in parallel on the service pool while repeated
        shapes collapse onto cache hits or in-flight searches.  One call is
        one overlapped wave — policies batch every candidate of a scheduling
        decision into a single call, and the wave's wall-clock time is the
        decision's plan-costing latency (see :attr:`wave_stats`).

        With :attr:`memoize` on, previously scored (job type, shape, replan?)
        keys answer from the in-process memo (a :class:`Candidate` without
        request stats) and only novel keys go through the service wave; the
        returned list stays positional either way.
        """
        if not pairs:
            return []
        if not self.memoize:
            return self._score_wave(list(pairs))
        out: List[Optional[Candidate]] = [None] * len(pairs)
        misses: List[Tuple[int, tuple]] = []
        for index, (job, partition) in enumerate(pairs):
            key = self._memo_key(job, partition)
            hit = self._memo.get(key)
            if hit is None:
                misses.append((index, key))
                continue
            plan, cost, feasible = hit
            self.candidates_scored += 1
            self._m_candidates.inc()
            out[index] = Candidate(
                job=job,
                partition=partition,
                plan=plan,
                seconds_per_iteration=cost,
                feasible=feasible,
            )
        if misses:
            scored = self._score_wave([pairs[index] for index, _key in misses])
            for (index, key), candidate in zip(misses, scored):
                self._memo[key] = (
                    candidate.plan,
                    candidate.seconds_per_iteration,
                    candidate.feasible,
                )
                out[index] = candidate
        return out  # type: ignore[return-value]

    def _score_wave(self, pairs: Sequence[Tuple[Job, Partition]]) -> List[Candidate]:
        """One overlapped service wave (the un-memoized scoring path)."""
        wave_started = time.perf_counter()
        # The wave span is the root of each decision's causal tree: requests
        # submitted inside it carry its context onto the service, so every
        # plan-request span (and its search-chain spans) hangs beneath it.
        with get_tracer().start_span(
            "decision wave",
            category="sched",
            args={"candidates": len(pairs)},
        ) as wave_span:
            futures = [
                self.service.submit(self._request(job, partition))
                for job, partition in pairs
            ]
            out: List[Candidate] = []
            for (job, partition), future in zip(pairs, futures):
                self.candidates_scored += 1
                try:
                    response = future.result()
                except ValueError:
                    # No admissible allocation for some call on this partition
                    # (e.g. the model cannot fit at any parallelization) — the
                    # candidate is simply infeasible, not an error.
                    out.append(
                        Candidate(
                            job=job,
                            partition=partition,
                            plan=None,
                            seconds_per_iteration=float("inf"),
                            feasible=False,
                        )
                    )
                    continue
                self._record(job, response.stats)
                out.append(
                    Candidate(
                        job=job,
                        partition=partition,
                        plan=response.plan,
                        seconds_per_iteration=response.cost,
                        feasible=response.feasible and response.cost > 0,
                        stats=response.stats,
                    )
                )
            wave_seconds = time.perf_counter() - wave_started
            wave_span.set(wave_seconds=wave_seconds)
        get_ledger().record(
            "decision_wave",
            wave_seconds=wave_seconds,
            candidates=[
                {
                    "job": candidate.job.spec.name,
                    "partition": candidate.partition.describe(),
                    "cost": candidate.seconds_per_iteration,
                    "feasible": candidate.feasible,
                    "outcome": candidate.stats.outcome if candidate.stats else "infeasible",
                    "fingerprint": candidate.stats.fingerprint if candidate.stats else None,
                }
                for candidate in out
            ],
        )
        self._wave_seconds.append(wave_seconds)
        self._wave_sizes.append(len(pairs))
        self._m_decision.observe(wave_seconds)
        self._m_candidates.inc(len(pairs))
        return out

    def score_one(self, job: Job, partitions: Sequence[Partition]) -> List[Candidate]:
        """Score one job against several partitions."""
        return self.score([(job, partition) for partition in partitions])

    # ------------------------------------------------------------------ #
    # Ledger
    # ------------------------------------------------------------------ #
    def _record(self, job: Job, stats: RequestStats) -> None:
        # Dedup joins carry a *copy* of the primary search's timings; counting
        # them would bill the same search seconds twice, so both ledgers skip
        # them.
        if stats.dedup_joined:
            return
        if self._is_replan(job):
            self._replan.append(stats)
        elif not (stats.cache_hit or stats.warm_started):
            self._cold.append(stats)

    @property
    def cold_stats(self) -> SearchTimeStats:
        """Search time spent on cold (uncached, unseeded) placements."""
        return SearchTimeStats(
            count=len(self._cold),
            total_seconds=sum(s.search_seconds for s in self._cold),
        )

    @property
    def replan_stats(self) -> SearchTimeStats:
        """Search time spent re-planning displaced/resized jobs."""
        return SearchTimeStats(
            count=len(self._replan),
            total_seconds=sum(s.search_seconds for s in self._replan),
        )

    def service_stats_delta(self) -> ServiceStats:
        """This costing's share of the (possibly shared) service counters.

        The difference between the service's live counters and their snapshot
        at construction time — so schedulers and benchmarks sharing one
        :class:`PlanService` still report per-run request statistics.
        """
        if self.service is None:
            return ServiceStats()
        return self.service.stats.snapshot() - self._stats_baseline

    @property
    def wave_stats(self) -> Dict[str, float]:
        """Scheduler decision latency: per-wave wall-clock summary.

        One wave is one :meth:`score` call — all candidate costings of one
        scheduling decision overlapped on the service pool.  ``mean``/``max``
        therefore measure how long the scheduler blocks on plan costing per
        decision, the latency metric tracked in ``BENCH_search_scaling.json``.
        """
        waves = self._wave_seconds
        if not waves:
            return {"waves": 0, "candidates": 0, "total_s": 0.0, "mean_s": 0.0, "max_s": 0.0}
        return {
            "waves": len(waves),
            "candidates": sum(self._wave_sizes),
            "total_s": sum(waves),
            "mean_s": sum(waves) / len(waves),
            "max_s": max(waves),
        }
