"""Per-job and cluster-level metrics of one scheduling run.

The scheduler reports the metrics multi-tenant cluster operators actually
compare policies on: per-job queue wait and turnaround, the run's makespan,
aggregate iterations/sec across all jobs, and GPU utilization (busy
GPU-seconds over the cluster's capacity for the makespan — node-failure
downtime is *not* subtracted from capacity, so failures show up as lost
utilization, like they do on a real cluster bill).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["JobMetrics", "SearchTimeStats", "ScheduleReport"]


@dataclass(frozen=True)
class JobMetrics:
    """How one job fared under the schedule."""

    name: str
    priority: int
    arrival_time: float
    first_started_at: Optional[float]
    completed_at: Optional[float]
    iterations: float
    n_replans: int
    n_preemptions: int
    n_resizes: int
    gpu_seconds: float
    phase: str
    n_swaps: int = 0
    """Hot plan swaps taken at iteration boundaries (online re-planning)."""

    @property
    def completed(self) -> bool:
        return self.completed_at is not None

    @property
    def queue_wait(self) -> float:
        """Seconds between arrival and first start (inf when never started)."""
        if self.first_started_at is None:
            return float("inf")
        return self.first_started_at - self.arrival_time

    @property
    def turnaround(self) -> float:
        """Seconds between arrival and completion (inf when incomplete)."""
        if self.completed_at is None:
            return float("inf")
        return self.completed_at - self.arrival_time

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "priority": self.priority,
            "arrival_time": self.arrival_time,
            "first_started_at": self.first_started_at,
            "completed_at": self.completed_at,
            "queue_wait": self.queue_wait if self.completed else None,
            "turnaround": self.turnaround if self.completed else None,
            "iterations": self.iterations,
            "n_replans": self.n_replans,
            "n_preemptions": self.n_preemptions,
            "n_resizes": self.n_resizes,
            "n_swaps": self.n_swaps,
            "gpu_seconds": self.gpu_seconds,
            "phase": self.phase,
        }


@dataclass(frozen=True)
class SearchTimeStats:
    """Aggregate search-time spent on one class of planning requests."""

    count: int = 0
    total_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total_seconds": self.total_seconds,
            "mean_seconds": self.mean_seconds,
        }


@dataclass
class ScheduleReport:
    """Outcome of one :class:`~repro.sched.scheduler.ClusterScheduler` run."""

    policy: str
    cluster_gpus: int
    jobs: List[JobMetrics] = field(default_factory=list)
    makespan: float = 0.0
    busy_horizon: float = 0.0
    """Span from the first arrival to the last accrual of GPU time.  Equals
    ``makespan`` on clean runs; longer when a displaced job ran past the last
    completion without ever finishing (e.g. a permanent failure)."""
    total_iterations: float = 0.0
    n_failures: int = 0
    n_recoveries: int = 0
    candidates_scored: int = 0
    cold_searches: SearchTimeStats = field(default_factory=SearchTimeStats)
    replan_searches: SearchTimeStats = field(default_factory=SearchTimeStats)
    service_stats: Dict[str, Any] = field(default_factory=dict)
    timeline: List[Dict[str, Any]] = field(default_factory=list)
    """Chronological ``{time, event, job, detail}`` records of the run."""
    n_events: int = 0
    """Kernel events processed (arrivals, iteration boundaries, failures...)."""
    engine_profile_runs: int = 0
    """Distinct runtime-engine iteration simulations behind the progress
    model (cache misses of the :class:`~repro.sched.profiles.IterationProfiler`)."""
    total_switch_seconds: float = 0.0
    """Parameter-migration time charged across all placements and resizes."""
    n_search_polls: int = 0
    """Background search slices consumed by online re-planning sessions."""
    n_swaps_rejected: int = 0
    """Hot swaps declined because the gain did not clear the margin after
    charging the switch cost."""
    swap_seconds_saved: float = 0.0
    """Estimated net seconds saved by taken swaps (remaining iterations times
    the per-iteration gain, minus the charged switch cost)."""
    online_sessions: int = 0
    """Background re-planning sessions opened over the run."""
    trace_path: Optional[str] = None
    """Where the merged Chrome trace of this run was written (if exported)."""
    metrics_path: Optional[str] = None
    """Where the ``METRICS_*.json`` registry snapshot was written (if any)."""
    provenance_path: Optional[str] = None
    """Where the ``PROVENANCE_*.jsonl`` decision ledger was written (if any)."""

    # ------------------------------------------------------------------ #
    # Derived cluster-level metrics
    # ------------------------------------------------------------------ #
    @property
    def n_jobs(self) -> int:
        return len(self.jobs)

    @property
    def n_completed(self) -> int:
        return sum(1 for job in self.jobs if job.completed)

    @property
    def all_completed(self) -> bool:
        return self.n_completed == self.n_jobs

    @property
    def aggregate_iterations_per_second(self) -> float:
        """Total RLHF iterations completed per second of makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.total_iterations / self.makespan

    @property
    def gpu_utilization(self) -> float:
        """Busy GPU-seconds over cluster capacity for the busy horizon.

        The denominator spans to the last accrual of GPU time (not just the
        last completion), so work done by jobs that never finished cannot
        push utilization past 100%.
        """
        capacity = self.cluster_gpus * max(self.busy_horizon, self.makespan)
        if capacity <= 0:
            return 0.0
        return sum(job.gpu_seconds for job in self.jobs) / capacity

    @property
    def mean_queue_wait(self) -> float:
        waits = [job.queue_wait for job in self.jobs if job.first_started_at is not None]
        return sum(waits) / len(waits) if waits else 0.0

    @property
    def max_queue_wait(self) -> float:
        waits = [job.queue_wait for job in self.jobs if job.first_started_at is not None]
        return max(waits) if waits else 0.0

    @property
    def n_replans(self) -> int:
        return sum(job.n_replans for job in self.jobs)

    @property
    def n_preemptions(self) -> int:
        return sum(job.n_preemptions for job in self.jobs)

    @property
    def n_resizes(self) -> int:
        return sum(job.n_resizes for job in self.jobs)

    @property
    def n_swaps(self) -> int:
        """Hot plan swaps taken at iteration boundaries across all jobs."""
        return sum(job.n_swaps for job in self.jobs)

    # ------------------------------------------------------------------ #
    # Serialization / presentation
    # ------------------------------------------------------------------ #
    def summary_row(self) -> Dict[str, Any]:
        """One table row for policy-comparison reports."""
        return {
            "policy": self.policy,
            "jobs": f"{self.n_completed}/{self.n_jobs}",
            "makespan (s)": round(self.makespan, 1),
            "agg iters/s": round(self.aggregate_iterations_per_second, 3),
            "gpu util": f"{self.gpu_utilization:.0%}",
            "mean wait (s)": round(self.mean_queue_wait, 1),
            "replans": self.n_replans,
            "preempts": self.n_preemptions,
            "resizes": self.n_resizes,
            "swaps": self.n_swaps,
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form of the full report."""
        return {
            "policy": self.policy,
            "cluster_gpus": self.cluster_gpus,
            "makespan": self.makespan,
            "busy_horizon": self.busy_horizon,
            "total_iterations": self.total_iterations,
            "aggregate_iterations_per_second": self.aggregate_iterations_per_second,
            "gpu_utilization": self.gpu_utilization,
            "mean_queue_wait": self.mean_queue_wait,
            "max_queue_wait": self.max_queue_wait,
            "all_completed": self.all_completed,
            "n_failures": self.n_failures,
            "n_recoveries": self.n_recoveries,
            "n_replans": self.n_replans,
            "n_preemptions": self.n_preemptions,
            "n_resizes": self.n_resizes,
            "n_swaps": self.n_swaps,
            "n_search_polls": self.n_search_polls,
            "n_swaps_rejected": self.n_swaps_rejected,
            "swap_seconds_saved": self.swap_seconds_saved,
            "online_sessions": self.online_sessions,
            "candidates_scored": self.candidates_scored,
            "cold_searches": self.cold_searches.to_dict(),
            "replan_searches": self.replan_searches.to_dict(),
            "service_stats": dict(self.service_stats),
            "n_events": self.n_events,
            "engine_profile_runs": self.engine_profile_runs,
            "total_switch_seconds": self.total_switch_seconds,
            "trace_path": self.trace_path,
            "metrics_path": self.metrics_path,
            "provenance_path": self.provenance_path,
            "jobs": [job.to_dict() for job in self.jobs],
        }
