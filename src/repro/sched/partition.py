"""Mesh-shaped partitions of a shared cluster, and free-space tracking.

A :class:`Partition` is a located, mesh-shaped region of the shared cluster
(a :class:`~repro.cluster.topology.DeviceMesh` over the *parent* cluster)
together with the dedicated-looking :class:`~repro.cluster.hardware.ClusterSpec`
it carves out via :meth:`ClusterSpec.sub_cluster`.  Because the carved spec
carries no location, two partitions of the same shape pose byte-identical
planning problems — which is exactly what lets the scheduler score hundreds
of (job, partition) candidates through the plan service's exact-key cache.

The :class:`PartitionManager` tracks which GPUs are free, allocated or failed
and enumerates the valid free partitions (the same shapes the paper admits
for device meshes: whole consecutive hosts, or aligned sub-node slices).
Free space is kept as one bitmask per node, so candidate queries generate
valid placements *algebraically* from the masks instead of filtering a
pre-enumerated mesh list — on a 2,048-GPU cluster that turns each query from
a pass over ~36k meshes (building a ``device_id_set`` for every one) into a
scan of 256 small integers, which is what makes fleet-scale replay feasible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..cluster.hardware import ClusterSpec
from ..cluster.topology import DeviceMesh

__all__ = ["Partition", "PartitionManager", "equal_node_partitions"]


@dataclass(frozen=True)
class Partition:
    """A located mesh-shaped slice of the shared cluster."""

    region: DeviceMesh

    @property
    def cluster(self) -> ClusterSpec:
        """The parent (shared) cluster the partition is carved from."""
        return self.region.cluster

    @property
    def n_gpus(self) -> int:
        return self.region.n_gpus

    @property
    def shape(self) -> Tuple[int, int]:
        """``(n_nodes, gpus_per_node)`` shape of the partition."""
        return self.region.shape

    @property
    def device_ids(self) -> Tuple[int, ...]:
        """Global GPU ids (within the parent cluster) covered."""
        return self.region.device_ids

    @property
    def device_id_set(self) -> FrozenSet[int]:
        return self.region.device_id_set

    @property
    def spec(self) -> ClusterSpec:
        """The partition as a dedicated-looking cluster (location erased)."""
        return self.cluster.sub_cluster(self.region.n_nodes, self.region.gpus_per_node)

    def describe(self) -> str:
        """Human readable location string, e.g. ``trainer[01-04]``."""
        return f"{self.region.describe()} ({self.n_gpus} GPUs)"


def equal_node_partitions(cluster: ClusterSpec, n_slots: int) -> List[Partition]:
    """Carve the cluster into ``n_slots`` equal whole-node partitions.

    This is the naive static baseline the scheduler benchmark compares
    against: every slot gets ``n_nodes // n_slots`` consecutive hosts and the
    carving never changes.  ``n_slots`` must not exceed the node count.
    """
    if n_slots < 1:
        raise ValueError(f"n_slots must be >= 1, got {n_slots}")
    if n_slots > cluster.n_nodes:
        raise ValueError(
            f"cannot carve {cluster.n_nodes} nodes into {n_slots} equal node slots"
        )
    span = cluster.n_nodes // n_slots
    return [
        Partition(
            DeviceMesh(
                cluster=cluster,
                node_start=slot * span,
                n_nodes=span,
                gpu_start=0,
                gpus_per_node=cluster.gpus_per_node,
            )
        )
        for slot in range(n_slots)
    ]


class PartitionManager:
    """Free/allocated/failed GPU bookkeeping over one shared cluster.

    Alongside the plain free-id set (the external contract), the manager
    maintains one free-GPU bitmask per node; all candidate queries are
    answered from the masks alone.  Both structures are updated by the same
    mutators with the same id-sets, so they can never drift apart.
    """

    def __init__(self, cluster: ClusterSpec) -> None:
        self.cluster = cluster
        self._free = set(range(cluster.n_gpus))
        self._allocated: Dict[int, FrozenSet[int]] = {}
        self._failed: set = set()
        gpn = cluster.gpus_per_node
        self._widths = [w for w in range(1, gpn + 1) if gpn % w == 0]
        self._full_mask = (1 << gpn) - 1
        self._node_mask: List[int] = [self._full_mask] * cluster.n_nodes

    # ------------------------------------------------------------------ #
    # Free-mask maintenance
    # ------------------------------------------------------------------ #
    def _clear_free_bits(self, ids: Iterable[int]) -> None:
        gpn = self.cluster.gpus_per_node
        masks = self._node_mask
        for gid in ids:
            masks[gid // gpn] &= ~(1 << (gid % gpn))

    def _set_free_bits(self, ids: Iterable[int]) -> None:
        gpn = self.cluster.gpus_per_node
        masks = self._node_mask
        for gid in ids:
            masks[gid // gpn] |= 1 << (gid % gpn)

    def _masks_with(self, extra_free: FrozenSet[int]) -> List[int]:
        """Node masks under the hypothesis that ``extra_free`` is also free."""
        if not extra_free:
            return self._node_mask
        gpn = self.cluster.gpus_per_node
        masks = list(self._node_mask)
        for gid in extra_free:
            masks[gid // gpn] |= 1 << (gid % gpn)
        return masks

    def _full_node_runs(self, masks: List[int]) -> List[Tuple[int, int]]:
        """Maximal runs of entirely-free nodes as ``(start, length)`` pairs."""
        runs: List[Tuple[int, int]] = []
        full = self._full_mask
        run_start: Optional[int] = None
        for node, mask in enumerate(masks):
            if mask == full:
                if run_start is None:
                    run_start = node
            elif run_start is not None:
                runs.append((run_start, node - run_start))
                run_start = None
        if run_start is not None:
            runs.append((run_start, len(masks) - run_start))
        return runs

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def free_ids(self) -> FrozenSet[int]:
        return frozenset(self._free)

    @property
    def failed_ids(self) -> FrozenSet[int]:
        return frozenset(self._failed)

    @property
    def n_free(self) -> int:
        return len(self._free)

    @property
    def n_available(self) -> int:
        """GPUs not lost to failures (free or allocated)."""
        return self.cluster.n_gpus - len(self._failed)

    def candidates(
        self,
        min_gpus: int = 1,
        max_gpus: Optional[float] = None,
        extra_free: FrozenSet[int] = frozenset(),
    ) -> List[Partition]:
        """Valid partitions placeable on the current free set.

        ``extra_free`` lets callers ask hypothetical questions ("what could I
        place if these GPUs were also free?") — used by preemption and
        elastic-resize decisions.  Candidates are returned smallest first,
        then by location, so greedy consumers naturally pack.
        """
        cluster = self.cluster
        gpn = cluster.gpus_per_node
        # Clamp before integer arithmetic: gpu_ceiling may be infinite.
        limit = cluster.n_gpus if max_gpus is None else min(max_gpus, cluster.n_gpus)
        masks = self._masks_with(extra_free)
        out: List[Partition] = []
        append = out.append
        # Sub-node and single full-node slices: aligned windows of each width.
        for width in self._widths:
            if width < min_gpus or width > limit:
                continue
            window = (1 << width) - 1
            for node, mask in enumerate(masks):
                if not mask:
                    continue
                for start in range(0, gpn, width):
                    if (mask >> start) & window == window:
                        append(
                            Partition(
                                DeviceMesh(
                                    cluster=cluster,
                                    node_start=node,
                                    n_nodes=1,
                                    gpu_start=start,
                                    gpus_per_node=width,
                                )
                            )
                        )
        # Multi-node meshes: whole-host spans inside runs of fully-free nodes.
        max_span = min(cluster.n_nodes, int(limit // gpn))
        if max_span >= 2:
            runs = self._full_node_runs(masks)
            for span in range(2, max_span + 1):
                if span * gpn < min_gpus:
                    continue
                for run_start, run_len in runs:
                    for offset in range(run_len - span + 1):
                        append(
                            Partition(
                                DeviceMesh(
                                    cluster=cluster,
                                    node_start=run_start + offset,
                                    n_nodes=span,
                                    gpu_start=0,
                                    gpus_per_node=gpn,
                                )
                            )
                        )
        out.sort(key=lambda p: (p.n_gpus, p.region.node_start, p.region.gpu_start))
        return out

    def distinct_shapes(
        self,
        min_gpus: int = 1,
        max_gpus: Optional[float] = None,
        extra_free: FrozenSet[int] = frozenset(),
    ) -> List[Partition]:
        """One representative candidate per distinct partition shape.

        Same-shaped partitions pose identical planning problems, so costing
        one representative per shape is enough to score them all.  The
        representative is the lowest-located placement of the shape (the
        first the sorted :meth:`candidates` list would yield), found directly
        from the node masks without materializing the full candidate list —
        this is the scheduler's per-decision hot query.
        """
        cluster = self.cluster
        gpn = cluster.gpus_per_node
        # Clamp before integer arithmetic: gpu_ceiling may be infinite.
        limit = cluster.n_gpus if max_gpus is None else min(max_gpus, cluster.n_gpus)
        masks = self._masks_with(extra_free)
        out: List[Partition] = []
        for width in self._widths:
            if width < min_gpus or width > limit:
                continue
            window = (1 << width) - 1
            found = False
            for node, mask in enumerate(masks):
                if not mask:
                    continue
                for start in range(0, gpn, width):
                    if (mask >> start) & window == window:
                        out.append(
                            Partition(
                                DeviceMesh(
                                    cluster=cluster,
                                    node_start=node,
                                    n_nodes=1,
                                    gpu_start=start,
                                    gpus_per_node=width,
                                )
                            )
                        )
                        found = True
                        break
                if found:
                    break
        max_span = min(cluster.n_nodes, int(limit // gpn))
        if max_span >= 2:
            runs = self._full_node_runs(masks)
            for span in range(2, max_span + 1):
                if span * gpn < min_gpus:
                    continue
                for run_start, run_len in runs:
                    if run_len >= span:
                        out.append(
                            Partition(
                                DeviceMesh(
                                    cluster=cluster,
                                    node_start=run_start,
                                    n_nodes=span,
                                    gpu_start=0,
                                    gpus_per_node=gpn,
                                )
                            )
                        )
                        break
        return out

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def allocate(self, partition: Partition, owner: int) -> None:
        """Hand the partition's GPUs to ``owner`` (a job uid)."""
        ids = partition.device_id_set
        if not ids <= self._free:
            missing = sorted(ids - self._free)
            raise ValueError(f"partition GPUs not free: {missing}")
        self._free -= ids
        self._clear_free_bits(ids)
        self._allocated[owner] = ids

    def release(self, owner: int) -> None:
        """Return an owner's GPUs to the free pool (failed ones stay out)."""
        ids = self._allocated.pop(owner, frozenset())
        freed = set(ids) - self._failed
        self._free |= freed
        self._set_free_bits(freed)

    def fail_node(self, node: int) -> FrozenSet[int]:
        """Mark a whole node failed; returns the affected GPU ids."""
        if not (0 <= node < self.cluster.n_nodes):
            raise ValueError(f"node {node} out of range")
        ids = frozenset(
            range(
                node * self.cluster.gpus_per_node,
                (node + 1) * self.cluster.gpus_per_node,
            )
        )
        self._failed |= ids
        self._free -= ids
        self._node_mask[node] = 0
        return ids

    def restore_node(self, node: int) -> FrozenSet[int]:
        """Bring a failed node back; its GPUs rejoin the free pool."""
        ids = frozenset(
            range(
                node * self.cluster.gpus_per_node,
                (node + 1) * self.cluster.gpus_per_node,
            )
        )
        recovered = ids & self._failed
        self._failed -= recovered
        allocated = set().union(*self._allocated.values()) if self._allocated else set()
        freed = recovered - allocated
        self._free |= freed
        self._set_free_bits(freed)
        return recovered

    def owner_ids(self, owner: int) -> FrozenSet[int]:
        """GPUs currently held by ``owner`` (empty when none)."""
        return frozenset(self._allocated.get(owner, frozenset()))
