"""Mesh-shaped partitions of a shared cluster, and free-space tracking.

A :class:`Partition` is a located, mesh-shaped region of the shared cluster
(a :class:`~repro.cluster.topology.DeviceMesh` over the *parent* cluster)
together with the dedicated-looking :class:`~repro.cluster.hardware.ClusterSpec`
it carves out via :meth:`ClusterSpec.sub_cluster`.  Because the carved spec
carries no location, two partitions of the same shape pose byte-identical
planning problems — which is exactly what lets the scheduler score hundreds
of (job, partition) candidates through the plan service's exact-key cache.

The :class:`PartitionManager` tracks which GPUs are free, allocated or failed
and enumerates the valid free partitions (the same shapes the paper admits
for device meshes: whole consecutive hosts, or aligned sub-node slices).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..cluster.hardware import ClusterSpec
from ..cluster.topology import DeviceMesh, enumerate_device_meshes

__all__ = ["Partition", "PartitionManager", "equal_node_partitions"]


@dataclass(frozen=True)
class Partition:
    """A located mesh-shaped slice of the shared cluster."""

    region: DeviceMesh

    @property
    def cluster(self) -> ClusterSpec:
        """The parent (shared) cluster the partition is carved from."""
        return self.region.cluster

    @property
    def n_gpus(self) -> int:
        return self.region.n_gpus

    @property
    def shape(self) -> Tuple[int, int]:
        """``(n_nodes, gpus_per_node)`` shape of the partition."""
        return self.region.shape

    @property
    def device_ids(self) -> Tuple[int, ...]:
        """Global GPU ids (within the parent cluster) covered."""
        return self.region.device_ids

    @property
    def device_id_set(self) -> FrozenSet[int]:
        return self.region.device_id_set

    @property
    def spec(self) -> ClusterSpec:
        """The partition as a dedicated-looking cluster (location erased)."""
        return self.cluster.sub_cluster(self.region.n_nodes, self.region.gpus_per_node)

    def describe(self) -> str:
        """Human readable location string, e.g. ``trainer[01-04]``."""
        return f"{self.region.describe()} ({self.n_gpus} GPUs)"


def equal_node_partitions(cluster: ClusterSpec, n_slots: int) -> List[Partition]:
    """Carve the cluster into ``n_slots`` equal whole-node partitions.

    This is the naive static baseline the scheduler benchmark compares
    against: every slot gets ``n_nodes // n_slots`` consecutive hosts and the
    carving never changes.  ``n_slots`` must not exceed the node count.
    """
    if n_slots < 1:
        raise ValueError(f"n_slots must be >= 1, got {n_slots}")
    if n_slots > cluster.n_nodes:
        raise ValueError(
            f"cannot carve {cluster.n_nodes} nodes into {n_slots} equal node slots"
        )
    span = cluster.n_nodes // n_slots
    return [
        Partition(
            DeviceMesh(
                cluster=cluster,
                node_start=slot * span,
                n_nodes=span,
                gpu_start=0,
                gpus_per_node=cluster.gpus_per_node,
            )
        )
        for slot in range(n_slots)
    ]


class PartitionManager:
    """Free/allocated/failed GPU bookkeeping over one shared cluster."""

    def __init__(self, cluster: ClusterSpec) -> None:
        self.cluster = cluster
        self._free = set(range(cluster.n_gpus))
        self._allocated: Dict[int, FrozenSet[int]] = {}
        self._failed: set = set()
        # All valid meshes of the cluster, enumerated once; candidate queries
        # filter this list against the current free set.
        self._meshes = enumerate_device_meshes(cluster)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    @property
    def free_ids(self) -> FrozenSet[int]:
        return frozenset(self._free)

    @property
    def failed_ids(self) -> FrozenSet[int]:
        return frozenset(self._failed)

    @property
    def n_free(self) -> int:
        return len(self._free)

    @property
    def n_available(self) -> int:
        """GPUs not lost to failures (free or allocated)."""
        return self.cluster.n_gpus - len(self._failed)

    def candidates(
        self,
        min_gpus: int = 1,
        max_gpus: Optional[float] = None,
        extra_free: FrozenSet[int] = frozenset(),
    ) -> List[Partition]:
        """Valid partitions placeable on the current free set.

        ``extra_free`` lets callers ask hypothetical questions ("what could I
        place if these GPUs were also free?") — used by preemption and
        elastic-resize decisions.  Candidates are returned smallest first,
        then by location, so greedy consumers naturally pack.
        """
        free = self._free | set(extra_free)
        out = [
            Partition(mesh)
            for mesh in self._meshes
            if min_gpus <= mesh.n_gpus
            and (max_gpus is None or mesh.n_gpus <= max_gpus)
            and mesh.device_id_set <= free
        ]
        out.sort(key=lambda p: (p.n_gpus, p.region.node_start, p.region.gpu_start))
        return out

    def distinct_shapes(
        self,
        min_gpus: int = 1,
        max_gpus: Optional[float] = None,
        extra_free: FrozenSet[int] = frozenset(),
    ) -> List[Partition]:
        """One representative candidate per distinct partition shape.

        Same-shaped partitions pose identical planning problems, so costing
        one representative per shape is enough to score them all.
        """
        seen: Dict[Tuple[int, int], Partition] = {}
        for partition in self.candidates(min_gpus, max_gpus, extra_free):
            seen.setdefault(partition.shape, partition)
        return list(seen.values())

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def allocate(self, partition: Partition, owner: int) -> None:
        """Hand the partition's GPUs to ``owner`` (a job uid)."""
        ids = partition.device_id_set
        if not ids <= self._free:
            missing = sorted(ids - self._free)
            raise ValueError(f"partition GPUs not free: {missing}")
        self._free -= ids
        self._allocated[owner] = ids

    def release(self, owner: int) -> None:
        """Return an owner's GPUs to the free pool (failed ones stay out)."""
        ids = self._allocated.pop(owner, frozenset())
        self._free |= set(ids) - self._failed

    def fail_node(self, node: int) -> FrozenSet[int]:
        """Mark a whole node failed; returns the affected GPU ids."""
        if not (0 <= node < self.cluster.n_nodes):
            raise ValueError(f"node {node} out of range")
        ids = frozenset(
            range(
                node * self.cluster.gpus_per_node,
                (node + 1) * self.cluster.gpus_per_node,
            )
        )
        self._failed |= ids
        self._free -= ids
        return ids

    def restore_node(self, node: int) -> FrozenSet[int]:
        """Bring a failed node back; its GPUs rejoin the free pool."""
        ids = frozenset(
            range(
                node * self.cluster.gpus_per_node,
                (node + 1) * self.cluster.gpus_per_node,
            )
        )
        recovered = ids & self._failed
        self._failed -= recovered
        allocated = set().union(*self._allocated.values()) if self._allocated else set()
        self._free |= recovered - allocated
        return recovered

    def owner_ids(self, owner: int) -> FrozenSet[int]:
        """GPUs currently held by ``owner`` (empty when none)."""
        return frozenset(self._allocated.get(owner, frozenset()))
