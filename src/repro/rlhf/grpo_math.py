"""Group Relative Policy Optimization (Shao et al., 2024) numerics.

GRPO removes the critic: for every prompt the actor samples a *group* of
responses, and each response's advantage is its reward standardised within the
group.  The policy update then uses the familiar PPO clipped surrogate.
"""

from __future__ import annotations

import numpy as np

from .autograd import Tensor
from .ppo_math import ppo_policy_loss

__all__ = ["group_normalized_advantages", "grpo_policy_loss"]


def group_normalized_advantages(
    rewards: np.ndarray, group_size: int, eps: float = 1e-8
) -> np.ndarray:
    """Standardise rewards within each prompt's group of samples.

    ``rewards`` has shape ``(n_prompts * group_size,)`` laid out group-major
    (all samples of prompt 0, then prompt 1, ...).  Returns advantages of the
    same shape with zero mean and unit variance within every group.
    """
    rewards = np.asarray(rewards, dtype=np.float64)
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    if rewards.ndim != 1 or rewards.size % group_size != 0:
        raise ValueError(
            f"rewards of shape {rewards.shape} cannot be split into groups of {group_size}"
        )
    grouped = rewards.reshape(-1, group_size)
    mean = grouped.mean(axis=1, keepdims=True)
    std = grouped.std(axis=1, keepdims=True)
    return ((grouped - mean) / (std + eps)).reshape(-1)


def grpo_policy_loss(
    new_log_probs: Tensor,
    old_log_probs: np.ndarray,
    rewards: np.ndarray,
    group_size: int,
    clip_ratio: float = 0.2,
) -> Tensor:
    """GRPO loss: PPO's clipped surrogate with group-normalised advantages.

    The per-sequence advantage is broadcast over that sequence's tokens.
    """
    advantages = group_normalized_advantages(rewards, group_size)
    per_token = np.broadcast_to(
        advantages[:, None], np.asarray(old_log_probs).shape
    )
    return ppo_policy_loss(new_log_probs, old_log_probs, per_token, clip_ratio)
