"""A minimal reverse-mode automatic differentiation engine on NumPy arrays.

The plan generator and runtime engine of this reproduction never touch real
tensors, but the paper's claim that ReaL "supports any RLHF algorithm whose
workflow decomposes into generation/inference/training calls" deserves a
functional check: :mod:`repro.rlhf` trains a tiny transformer language model
with PPO, DPO, GRPO and ReMax end-to-end.  This module provides the autograd
substrate for that — a small, well-tested tape-based engine in the spirit of
micrograd, operating on NumPy arrays with broadcasting support.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Tensor", "no_grad", "stack", "concatenate"]

ArrayLike = Union[np.ndarray, float, int, Sequence[float]]

_GRAD_ENABLED = True


class no_grad:
    """Context manager disabling gradient tracking (for generation/inference)."""

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._previous = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._previous


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (the reverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were expanded from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy array plus an optional gradient and a backward recipe."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward: Optional[Callable[[np.ndarray], None]] = None,
        name: str = "",
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad and _GRAD_ENABLED
        self._parents = _parents if self.requires_grad else ()
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def item(self) -> float:
        """The scalar value of a 0-d (or single-element) tensor."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def numpy(self) -> np.ndarray:
        """The underlying array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """A tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # Autograd plumbing
    # ------------------------------------------------------------------ #
    @staticmethod
    def _lift(value: Union["Tensor", ArrayLike]) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without an explicit gradient needs a scalar")
            grad = np.ones_like(self.data)
        # Topological order of the graph reachable from self.
        order: List[Tensor] = []
        visited: set[int] = set()

        def visit(node: "Tensor") -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for parent in node._parents:
                visit(parent)
            order.append(node)

        visit(self)
        self._accumulate(np.asarray(grad))
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def _make(self, data: np.ndarray, parents: Tuple["Tensor", ...], backward) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        return Tensor(data, requires_grad=requires, _parents=parents if requires else (),
                      _backward=backward if requires else None)

    # ------------------------------------------------------------------ #
    # Elementwise arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data ** 2))

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._lift(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Matrix ops and reshaping
    # ------------------------------------------------------------------ #
    def matmul(self, other: "Tensor") -> "Tensor":
        other = self._lift(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad @ np.swapaxes(other.data, -1, -2))
            if other.requires_grad:
                other._accumulate(np.swapaxes(self.data, -1, -2) @ grad)

        return self._make(out_data, (self, other), backward)

    __matmul__ = matmul

    def transpose(self, axis_a: int = -2, axis_b: int = -1) -> "Tensor":
        out_data = np.swapaxes(self.data, axis_a, axis_b)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.swapaxes(grad, axis_a, axis_b))

        return self._make(out_data, (self,), backward)

    def reshape(self, *shape: int) -> "Tensor":
        original = self.data.shape
        out_data = self.data.reshape(*shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Nonlinearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data ** 2))

        return self._make(out_data, (self,), backward)

    def gelu(self) -> "Tensor":
        """Tanh-approximated GELU activation."""
        x = self.data
        c = np.sqrt(2.0 / np.pi)
        inner = c * (x + 0.044715 * x ** 3)
        t = np.tanh(inner)
        out_data = 0.5 * x * (1.0 + t)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                d_inner = c * (1.0 + 3 * 0.044715 * x ** 2)
                d = 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t ** 2) * d_inner
                self._accumulate(grad * d)

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    def logsigmoid(self) -> "Tensor":
        """Numerically stable ``log(sigmoid(x))`` (used by the DPO loss)."""
        x = self.data
        out_data = -np.logaddexp(0.0, -x)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 / (1.0 + np.exp(x))))

        return self._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                mask = (self.data >= low) & (self.data <= high)
                self._accumulate(grad * mask)

        return self._make(out_data, (self,), backward)

    def maximum(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other)
        out_data = np.maximum(self.data, other.data)

        def backward(grad: np.ndarray) -> None:
            mask = self.data >= other.data
            if self.requires_grad:
                self._accumulate(grad * mask)
            if other.requires_grad:
                other._accumulate(grad * (~mask))

        return self._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # Reductions and indexing
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                g = np.asarray(grad)
                if axis is not None and not keepdims:
                    g = np.expand_dims(g, axis)
                self._accumulate(np.broadcast_to(g, self.data.shape))

        return self._make(out_data, (self,), backward)

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) / float(count)

    def gather_last(self, indices: np.ndarray) -> "Tensor":
        """Select one element along the last axis per leading position.

        ``indices`` has the shape of ``self`` minus its last axis; the result
        has that same shape.  This implements the log-prob lookup
        ``logits[..., token]``.
        """
        indices = np.asarray(indices, dtype=np.int64)
        out_data = np.take_along_axis(self.data, indices[..., None], axis=-1)[..., 0]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.put_along_axis(full, indices[..., None], np.asarray(grad)[..., None], axis=-1)
                self._accumulate(full)

        return self._make(out_data, (self,), backward)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        """Numerically stable log-softmax along ``axis``."""
        x = self.data
        shifted = x - x.max(axis=axis, keepdims=True)
        logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - logsumexp
        softmax = np.exp(out_data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                g = np.asarray(grad)
                self._accumulate(g - softmax * g.sum(axis=axis, keepdims=True))

        return self._make(out_data, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        return self.log_softmax(axis=axis).exp()

    def masked_fill(self, mask: np.ndarray, value: float) -> "Tensor":
        """Replace positions where ``mask`` is True with ``value``."""
        mask = np.asarray(mask, dtype=bool)
        out_data = np.where(mask, value, self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.where(mask, 0.0, grad))

        return self._make(out_data, (self,), backward)

    def index_rows(self, indices: np.ndarray) -> "Tensor":
        """Row lookup ``self[indices]`` (embedding lookup)."""
        indices = np.asarray(indices, dtype=np.int64)
        out_data = self.data[indices]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, indices.reshape(-1), np.asarray(grad).reshape(-1, self.data.shape[-1]))
                self._accumulate(full)

        return self._make(out_data, (self,), backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis, propagating gradients to each input."""
    tensors = [Tensor._lift(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(np.asarray(grad), len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(piece, axis=axis))

    requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
    return Tensor(out_data, requires_grad=requires,
                  _parents=tuple(tensors) if requires else (),
                  _backward=backward if requires else None)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis."""
    tensors = [Tensor._lift(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]

    def backward(grad: np.ndarray) -> None:
        offsets = np.cumsum([0] + sizes)
        g = np.asarray(grad)
        for tensor, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * g.ndim
                slicer[axis] = slice(lo, hi)
                tensor._accumulate(g[tuple(slicer)])

    requires = _GRAD_ENABLED and any(t.requires_grad for t in tensors)
    return Tensor(out_data, requires_grad=requires,
                  _parents=tuple(tensors) if requires else (),
                  _backward=backward if requires else None)
