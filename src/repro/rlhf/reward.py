"""Reward models for the tiny functional RLHF pipeline.

The paper's reward model is a trained LLM with a scalar head.  For the
functional check we provide both a scripted, verifiable reward (so tests can
assert that PPO actually improves it) and a :class:`TinyLM`-based reward model
with a scalar value head, mirroring the role of the paper's Reward inference
call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from .autograd import no_grad
from .tiny_llm import TinyLM, TinyLMConfig

__all__ = ["RewardFunction", "KeywordReward", "LengthReward", "TinyRewardModel"]


class RewardFunction(Protocol):
    """Anything that scores full sequences given the prompt length."""

    def __call__(self, sequences: np.ndarray, prompt_len: int) -> np.ndarray:
        """Return one scalar reward per sequence."""
        ...


@dataclass(frozen=True)
class KeywordReward:
    """Reward equal to the fraction of generated tokens matching a target token.

    A policy maximising this reward learns to emit ``target_token`` — an
    easily verifiable optimum, used by the PPO convergence tests.
    """

    target_token: int

    def __call__(self, sequences: np.ndarray, prompt_len: int) -> np.ndarray:
        responses = np.asarray(sequences)[:, prompt_len:]
        if responses.size == 0:
            return np.zeros(np.asarray(sequences).shape[0])
        return (responses == self.target_token).mean(axis=1)


@dataclass(frozen=True)
class LengthReward:
    """Reward preferring responses that avoid a designated stop token early."""

    stop_token: int

    def __call__(self, sequences: np.ndarray, prompt_len: int) -> np.ndarray:
        responses = np.asarray(sequences)[:, prompt_len:]
        rewards = np.zeros(responses.shape[0])
        for row in range(responses.shape[0]):
            hits = np.where(responses[row] == self.stop_token)[0]
            effective = hits[0] if hits.size else responses.shape[1]
            rewards[row] = effective / responses.shape[1]
        return rewards


class TinyRewardModel:
    """A TinyLM with a scalar head used as a learned reward model."""

    def __init__(self, config: TinyLMConfig, seed: int = 7) -> None:
        self.model = TinyLM(
            TinyLMConfig(
                vocab_size=config.vocab_size,
                max_seq_len=config.max_seq_len,
                hidden_size=config.hidden_size,
                n_layers=config.n_layers,
                n_heads=config.n_heads,
                is_critic=True,
            ),
            seed=seed,
        )

    def __call__(self, sequences: np.ndarray, prompt_len: int) -> np.ndarray:
        """Score each sequence with the value of its final token."""
        with no_grad():
            values = self.model.forward(np.asarray(sequences)).numpy()
        return values[:, -1]
