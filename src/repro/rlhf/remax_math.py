"""ReMax (Li et al., 2024) numerics.

ReMax is REINFORCE with a greedy-decoding baseline: the advantage of a sampled
response is its reward minus the reward of the greedy response to the same
prompt, which removes the need for a learned critic.  The two generation calls
(sampling and greedy) are independent, which is what lets ReaL run them
concurrently (Figure 16).
"""

from __future__ import annotations

import numpy as np

from .autograd import Tensor

__all__ = ["remax_advantages", "remax_policy_loss"]


def remax_advantages(sample_rewards: np.ndarray, greedy_rewards: np.ndarray) -> np.ndarray:
    """Per-sequence advantage: sampled reward minus greedy-baseline reward."""
    sample_rewards = np.asarray(sample_rewards, dtype=np.float64)
    greedy_rewards = np.asarray(greedy_rewards, dtype=np.float64)
    if sample_rewards.shape != greedy_rewards.shape:
        raise ValueError("sample and greedy reward shapes must match")
    return sample_rewards - greedy_rewards


def remax_policy_loss(
    new_log_probs: Tensor,
    sample_rewards: np.ndarray,
    greedy_rewards: np.ndarray,
) -> Tensor:
    """REINFORCE loss with the greedy baseline: ``-E[(r - r_greedy) log pi]``."""
    advantages = remax_advantages(sample_rewards, greedy_rewards)
    per_token = np.broadcast_to(advantages[:, None], new_log_probs.shape)
    return (new_log_probs * Tensor(per_token) * -1.0).mean()
