"""Auto-regressive generation from the tiny functional language model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .autograd import no_grad
from .tiny_llm import TinyLM

__all__ = ["GenerationConfig", "GenerationOutput", "generate"]


@dataclass(frozen=True)
class GenerationConfig:
    """Sampling configuration for the tiny model's generation call."""

    max_new_tokens: int = 8
    temperature: float = 1.0
    top_k: Optional[int] = None
    greedy: bool = False
    seed: int = 0


@dataclass
class GenerationOutput:
    """Sequences and per-token log-probabilities produced by generation."""

    sequences: np.ndarray
    """Full sequences (prompt + response), shape ``(batch, prompt+new)``."""
    response_log_probs: np.ndarray
    """Log-probability of each generated token, shape ``(batch, new)``."""
    prompt_len: int

    @property
    def responses(self) -> np.ndarray:
        """Just the generated continuation, shape ``(batch, new)``."""
        return self.sequences[:, self.prompt_len :]


def _sample_row(probs: np.ndarray, rng: np.random.Generator) -> int:
    return int(rng.choice(len(probs), p=probs))


def generate(model: TinyLM, prompts: np.ndarray, config: GenerationConfig) -> GenerationOutput:
    """Generate continuations for ``prompts`` of shape ``(batch, prompt_len)``.

    This is the functional analogue of the actor generation call: a prefill
    pass followed by per-token decoding.  (The tiny model has no KV cache —
    each step re-runs the forward pass, which is fine at this scale.)
    """
    prompts = np.asarray(prompts, dtype=np.int64)
    if prompts.ndim != 2:
        raise ValueError("prompts must have shape (batch, prompt_len)")
    batch, prompt_len = prompts.shape
    total_len = prompt_len + config.max_new_tokens
    if total_len > model.config.max_seq_len:
        raise ValueError(
            f"prompt ({prompt_len}) + new tokens ({config.max_new_tokens}) exceeds "
            f"the model's max sequence length {model.config.max_seq_len}"
        )
    if config.temperature <= 0:
        raise ValueError("temperature must be positive")

    rng = np.random.default_rng(config.seed)
    sequences = prompts.copy()
    log_probs = np.zeros((batch, config.max_new_tokens))

    with no_grad():
        for step in range(config.max_new_tokens):
            logits = model.forward(sequences).numpy()[:, -1, :]
            scaled = logits / config.temperature
            scaled = scaled - scaled.max(axis=-1, keepdims=True)
            probs = np.exp(scaled)
            probs /= probs.sum(axis=-1, keepdims=True)
            if config.top_k is not None and config.top_k < probs.shape[-1]:
                for row in range(batch):
                    cutoff = np.sort(probs[row])[-config.top_k]
                    probs[row][probs[row] < cutoff] = 0.0
                    probs[row] /= probs[row].sum()
            if config.greedy:
                next_tokens = probs.argmax(axis=-1)
            else:
                next_tokens = np.array([_sample_row(probs[row], rng) for row in range(batch)])
            log_probs[:, step] = np.log(
                probs[np.arange(batch), next_tokens] + 1e-12
            )
            sequences = np.concatenate([sequences, next_tokens[:, None]], axis=1)

    return GenerationOutput(
        sequences=sequences, response_log_probs=log_probs, prompt_len=prompt_len
    )
