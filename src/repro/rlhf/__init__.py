"""Functional RLHF numerics on a tiny NumPy transformer (PPO/DPO/GRPO/ReMax)."""

from .autograd import Tensor, concatenate, no_grad, stack
from .dpo_math import dpo_implicit_rewards, dpo_loss
from .generation import GenerationConfig, GenerationOutput, generate
from .grpo_math import group_normalized_advantages, grpo_policy_loss
from .ppo_math import (
    PPOConfig,
    compute_gae,
    kl_penalty_rewards,
    ppo_policy_loss,
    ppo_value_loss,
    whiten,
)
from .remax_math import remax_advantages, remax_policy_loss
from .reward import KeywordReward, LengthReward, TinyRewardModel
from .tiny_llm import Adam, TinyLM, TinyLMConfig, layer_norm
from .trainer import (
    DPOTrainer,
    GRPOTrainer,
    IterationStats,
    PPOTrainer,
    ReMaxTrainer,
    RLHFTask,
)

__all__ = [
    "Tensor",
    "no_grad",
    "stack",
    "concatenate",
    "TinyLM",
    "TinyLMConfig",
    "Adam",
    "layer_norm",
    "GenerationConfig",
    "GenerationOutput",
    "generate",
    "KeywordReward",
    "LengthReward",
    "TinyRewardModel",
    "PPOConfig",
    "compute_gae",
    "whiten",
    "kl_penalty_rewards",
    "ppo_policy_loss",
    "ppo_value_loss",
    "dpo_loss",
    "dpo_implicit_rewards",
    "group_normalized_advantages",
    "grpo_policy_loss",
    "remax_advantages",
    "remax_policy_loss",
    "RLHFTask",
    "PPOTrainer",
    "DPOTrainer",
    "GRPOTrainer",
    "ReMaxTrainer",
    "IterationStats",
]
