"""PPO mathematics: GAE, advantage whitening and the clipped surrogate losses.

These are the numerical kernels of the Actor/Critic training calls in the
paper's PPO workflow.  Array-level functions operate on NumPy arrays; the loss
builders operate on autograd :class:`~repro.rlhf.autograd.Tensor` objects so
gradients flow into the tiny models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .autograd import Tensor

__all__ = [
    "PPOConfig",
    "compute_gae",
    "whiten",
    "kl_penalty_rewards",
    "ppo_policy_loss",
    "ppo_value_loss",
]


@dataclass(frozen=True)
class PPOConfig:
    """PPO hyper-parameters (defaults follow common RLHF practice)."""

    gamma: float = 1.0
    gae_lambda: float = 0.95
    clip_ratio: float = 0.2
    value_clip: float = 0.2
    kl_coef: float = 0.1
    n_minibatches: int = 4
    learning_rate: float = 1e-3
    entropy_coef: float = 0.0


def compute_gae(
    rewards: np.ndarray,
    values: np.ndarray,
    gamma: float = 1.0,
    gae_lambda: float = 0.95,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generalised advantage estimation over per-token rewards.

    ``rewards`` and ``values`` have shape ``(batch, T)``; the value after the
    final token is treated as zero (the episode ends with the response).
    Returns ``(advantages, returns)`` of the same shape.
    """
    rewards = np.asarray(rewards, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if rewards.shape != values.shape:
        raise ValueError(f"rewards {rewards.shape} and values {values.shape} must match")
    batch, horizon = rewards.shape
    advantages = np.zeros_like(rewards)
    last_gae = np.zeros(batch)
    for t in reversed(range(horizon)):
        next_value = values[:, t + 1] if t + 1 < horizon else np.zeros(batch)
        delta = rewards[:, t] + gamma * next_value - values[:, t]
        last_gae = delta + gamma * gae_lambda * last_gae
        advantages[:, t] = last_gae
    returns = advantages + values
    return advantages, returns


def whiten(values: np.ndarray, shift_mean: bool = True, eps: float = 1e-8) -> np.ndarray:
    """Normalise an array to unit variance (and zero mean unless disabled)."""
    values = np.asarray(values, dtype=np.float64)
    mean = values.mean()
    std = values.std()
    out = (values - mean) / (std + eps)
    if not shift_mean:
        out = out + mean
    return out


def kl_penalty_rewards(
    sparse_rewards: np.ndarray,
    actor_log_probs: np.ndarray,
    ref_log_probs: np.ndarray,
    kl_coef: float,
) -> np.ndarray:
    """Per-token rewards: KL penalty everywhere plus the score on the last token.

    This is the standard InstructGPT reward shaping: the reward model's scalar
    score is granted at the final token while every token pays
    ``kl_coef * (log pi - log pi_ref)``.
    """
    actor_log_probs = np.asarray(actor_log_probs, dtype=np.float64)
    ref_log_probs = np.asarray(ref_log_probs, dtype=np.float64)
    sparse_rewards = np.asarray(sparse_rewards, dtype=np.float64)
    if actor_log_probs.shape != ref_log_probs.shape:
        raise ValueError("actor and reference log-prob shapes must match")
    rewards = -kl_coef * (actor_log_probs - ref_log_probs)
    rewards[:, -1] += sparse_rewards
    return rewards


def ppo_policy_loss(
    new_log_probs: Tensor,
    old_log_probs: np.ndarray,
    advantages: np.ndarray,
    clip_ratio: float = 0.2,
) -> Tensor:
    """The clipped PPO surrogate objective (to be minimised).

    ``new_log_probs`` is a differentiable tensor of shape ``(batch, T)``;
    ``old_log_probs`` and ``advantages`` are fixed arrays of the same shape.
    """
    old = Tensor(np.asarray(old_log_probs, dtype=np.float64))
    adv = Tensor(np.asarray(advantages, dtype=np.float64))
    ratio = (new_log_probs - old).exp()
    clipped = ratio.clip(1.0 - clip_ratio, 1.0 + clip_ratio)
    # -min(ratio * adv, clipped * adv) == max(-ratio * adv, -clipped * adv)
    surrogate = ((ratio * adv) * -1.0).maximum((clipped * adv) * -1.0)
    return surrogate.mean()


def ppo_value_loss(
    new_values: Tensor,
    old_values: np.ndarray,
    returns: np.ndarray,
    value_clip: float = 0.2,
) -> Tensor:
    """Clipped value-function loss of the critic training call."""
    old = Tensor(np.asarray(old_values, dtype=np.float64))
    target = Tensor(np.asarray(returns, dtype=np.float64))
    clipped = old + (new_values - old).clip(-value_clip, value_clip)
    loss_unclipped = (new_values - target) ** 2
    loss_clipped = (clipped - target) ** 2
    return loss_unclipped.maximum(loss_clipped).mean() * 0.5
