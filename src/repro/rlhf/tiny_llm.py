"""A tiny GPT-style language model on the NumPy autograd engine.

This is the functional counterpart of the analytical LLaMA configurations: a
few-thousand-parameter causal transformer whose forward *and* backward passes
actually run, so the RLHF algorithms (PPO, DPO, GRPO, ReMax) can be exercised
end-to-end on synthetic tasks.  The architecture mirrors GPT-2: token and
position embeddings, pre-norm transformer blocks with causal self-attention
and a GELU MLP, a final layer norm and a tied-free LM head (or a scalar value
head for critic/reward models).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from .autograd import Tensor, no_grad

__all__ = ["TinyLMConfig", "TinyLM", "Adam", "layer_norm"]


@dataclass(frozen=True)
class TinyLMConfig:
    """Architecture of the tiny functional transformer."""

    vocab_size: int = 32
    max_seq_len: int = 32
    hidden_size: int = 32
    n_layers: int = 2
    n_heads: int = 2
    is_critic: bool = False

    def __post_init__(self) -> None:
        if self.hidden_size % self.n_heads != 0:
            raise ValueError("hidden_size must be divisible by n_heads")

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.n_heads


def layer_norm(x: Tensor, gamma: Tensor, beta: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last axis."""
    mu = x.mean(axis=-1, keepdims=True)
    centered = x - mu
    var = (centered * centered).mean(axis=-1, keepdims=True)
    normalised = centered / ((var + eps) ** 0.5)
    return normalised * gamma + beta


class TinyLM:
    """A tiny causal transformer language model (or critic)."""

    def __init__(self, config: TinyLMConfig, seed: int = 0) -> None:
        self.config = config
        rng = np.random.default_rng(seed)
        h, v, t = config.hidden_size, config.vocab_size, config.max_seq_len
        scale = 0.02

        def param(*shape: int) -> Tensor:
            return Tensor(rng.normal(0.0, scale, size=shape), requires_grad=True)

        self.params: Dict[str, Tensor] = {}
        self.params["wte"] = param(v, h)
        self.params["wpe"] = param(t, h)
        for layer in range(config.n_layers):
            prefix = f"h{layer}."
            self.params[prefix + "ln1_g"] = Tensor(np.ones(h), requires_grad=True)
            self.params[prefix + "ln1_b"] = Tensor(np.zeros(h), requires_grad=True)
            self.params[prefix + "wq"] = param(h, h)
            self.params[prefix + "wk"] = param(h, h)
            self.params[prefix + "wv"] = param(h, h)
            self.params[prefix + "wo"] = param(h, h)
            self.params[prefix + "ln2_g"] = Tensor(np.ones(h), requires_grad=True)
            self.params[prefix + "ln2_b"] = Tensor(np.zeros(h), requires_grad=True)
            self.params[prefix + "w_up"] = param(h, 4 * h)
            self.params[prefix + "w_down"] = param(4 * h, h)
        self.params["lnf_g"] = Tensor(np.ones(h), requires_grad=True)
        self.params["lnf_b"] = Tensor(np.zeros(h), requires_grad=True)
        out_dim = 1 if config.is_critic else v
        self.params["head"] = param(h, out_dim)

    # ------------------------------------------------------------------ #
    # Parameter management
    # ------------------------------------------------------------------ #
    def parameters(self) -> List[Tensor]:
        """All trainable parameter tensors."""
        return list(self.params.values())

    def n_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        """Clear all accumulated gradients."""
        for p in self.parameters():
            p.zero_grad()

    def state_dict(self) -> Dict[str, np.ndarray]:
        """A copy of every parameter array (for checkpoints / reference models)."""
        return {name: p.data.copy() for name, p in self.params.items()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter values saved with :meth:`state_dict`."""
        missing = set(self.params) - set(state)
        if missing:
            raise KeyError(f"state dict misses parameters: {sorted(missing)}")
        for name, value in state.items():
            if name in self.params:
                self.params[name].data = np.asarray(value, dtype=np.float64).copy()

    def clone(self, seed: int = 0) -> "TinyLM":
        """A new model with identical weights (e.g. the frozen reference)."""
        other = TinyLM(self.config, seed=seed)
        other.load_state_dict(self.state_dict())
        return other

    # ------------------------------------------------------------------ #
    # Forward pass
    # ------------------------------------------------------------------ #
    def _block(self, x: Tensor, layer: int, causal_mask: np.ndarray) -> Tensor:
        cfg = self.config
        p = self.params
        prefix = f"h{layer}."
        batch, seq, hidden = x.shape

        normed = layer_norm(x, p[prefix + "ln1_g"], p[prefix + "ln1_b"])
        q = normed @ p[prefix + "wq"]
        k = normed @ p[prefix + "wk"]
        v = normed @ p[prefix + "wv"]
        # (B, T, C) -> (B, H, T, hd)
        def split_heads(t: Tensor) -> Tensor:
            return t.reshape(batch, seq, cfg.n_heads, cfg.head_dim).transpose(1, 2)

        qh, kh, vh = split_heads(q), split_heads(k), split_heads(v)
        scores = (qh @ kh.transpose(-2, -1)) * (1.0 / math.sqrt(cfg.head_dim))
        scores = scores.masked_fill(causal_mask[None, None, :seq, :seq], -1e9)
        attention = scores.softmax(axis=-1)
        context = attention @ vh
        context = context.transpose(1, 2).reshape(batch, seq, hidden)
        x = x + context @ p[prefix + "wo"]

        normed2 = layer_norm(x, p[prefix + "ln2_g"], p[prefix + "ln2_b"])
        mlp = (normed2 @ p[prefix + "w_up"]).gelu() @ p[prefix + "w_down"]
        return x + mlp

    def forward(self, tokens: np.ndarray) -> Tensor:
        """Run the model over ``tokens`` of shape ``(batch, seq)``.

        Returns logits of shape ``(batch, seq, vocab)`` for an LM, or values
        of shape ``(batch, seq)`` for a critic.
        """
        tokens = np.asarray(tokens, dtype=np.int64)
        if tokens.ndim != 2:
            raise ValueError(f"tokens must be (batch, seq), got shape {tokens.shape}")
        batch, seq = tokens.shape
        if seq > self.config.max_seq_len:
            raise ValueError(f"sequence length {seq} exceeds max {self.config.max_seq_len}")
        positions = np.arange(seq)
        x = self.params["wte"].index_rows(tokens) + self.params["wpe"].index_rows(positions)
        causal_mask = np.triu(np.ones((self.config.max_seq_len, self.config.max_seq_len), dtype=bool), k=1)
        for layer in range(self.config.n_layers):
            x = self._block(x, layer, causal_mask)
        x = layer_norm(x, self.params["lnf_g"], self.params["lnf_b"])
        out = x @ self.params["head"]
        if self.config.is_critic:
            return out.reshape(batch, seq)
        return out

    __call__ = forward

    # ------------------------------------------------------------------ #
    # Log-probabilities
    # ------------------------------------------------------------------ #
    def token_log_probs(self, tokens: np.ndarray) -> Tensor:
        """Log-probability of each next token under the model.

        For ``tokens`` of shape ``(batch, seq)`` the result has shape
        ``(batch, seq - 1)``: entry ``[b, t]`` is ``log p(tokens[b, t+1] |
        tokens[b, :t+1])``.
        """
        logits = self.forward(tokens)
        log_probs = logits.log_softmax(axis=-1)
        _batch, seq = np.asarray(tokens).shape
        # Predictions at positions 0..seq-2 score the targets at 1..seq-1.
        targets = np.asarray(tokens)[:, 1:]
        trimmed = _slice_time(log_probs, 0, seq - 1)
        return trimmed.gather_last(targets)


def _slice_time(x: Tensor, start: int, stop: int) -> Tensor:
    """Differentiable slice along the time (second) axis."""
    out_data = x.data[:, start:stop]

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            full = np.zeros_like(x.data)
            full[:, start:stop] = grad
            x._accumulate(full)

    requires = x.requires_grad
    return Tensor(out_data, requires_grad=requires, _parents=(x,) if requires else (),
                  _backward=backward if requires else None)


class Adam:
    """The Adam optimizer over a list of parameter tensors."""

    def __init__(
        self,
        parameters: List[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        self.parameters = list(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def zero_grad(self) -> None:
        """Clear gradients of all managed parameters."""
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        """Apply one Adam update using the accumulated gradients."""
        self._step += 1
        t = self._step
        for i, p in enumerate(self.parameters):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * grad ** 2
            m_hat = self._m[i] / (1 - self.beta1 ** t)
            v_hat = self._v[i] / (1 - self.beta2 ** t)
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
