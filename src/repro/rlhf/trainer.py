"""End-to-end RLHF training loops on the tiny functional models.

These trainers exercise the complete PPO/DPO/ReMax/GRPO dataflow with real
numerics on synthetic tasks, providing the functional correctness counterpart
to the (analytical) plan search and runtime engine.  The PPO trainer mirrors
the six-call workflow of Figure 4: actor generation, reward / reference /
critic inference, then actor and critic training over several minibatches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .autograd import Tensor, no_grad
from .dpo_math import dpo_loss
from .generation import GenerationConfig, generate
from .grpo_math import grpo_policy_loss
from .ppo_math import (
    PPOConfig,
    compute_gae,
    kl_penalty_rewards,
    ppo_policy_loss,
    ppo_value_loss,
    whiten,
)
from .remax_math import remax_policy_loss
from .reward import KeywordReward, RewardFunction
from .tiny_llm import Adam, TinyLM, TinyLMConfig

__all__ = ["RLHFTask", "PPOTrainer", "DPOTrainer", "ReMaxTrainer", "GRPOTrainer", "IterationStats"]


@dataclass(frozen=True)
class RLHFTask:
    """A synthetic RLHF task: random prompts scored by a scripted reward."""

    vocab_size: int = 16
    prompt_len: int = 4
    gen_len: int = 6
    batch_size: int = 16
    target_token: int = 3
    seed: int = 0

    def reward_function(self) -> RewardFunction:
        """The task's scripted reward (fraction of target tokens emitted)."""
        return KeywordReward(target_token=self.target_token)

    def model_config(self, is_critic: bool = False) -> TinyLMConfig:
        """A tiny model configuration sized for this task."""
        return TinyLMConfig(
            vocab_size=self.vocab_size,
            max_seq_len=self.prompt_len + self.gen_len + 2,
            hidden_size=32,
            n_layers=2,
            n_heads=2,
            is_critic=is_critic,
        )

    def sample_prompts(self, rng: np.random.Generator) -> np.ndarray:
        """Draw a batch of random prompts."""
        return rng.integers(0, self.vocab_size, size=(self.batch_size, self.prompt_len))


@dataclass
class IterationStats:
    """Summary statistics of one training iteration."""

    iteration: int
    mean_reward: float
    policy_loss: float
    value_loss: float = 0.0
    kl_to_ref: float = 0.0


class PPOTrainer:
    """The full PPO RLHF loop on tiny models (actor, critic, reward, reference)."""

    def __init__(
        self,
        task: RLHFTask = RLHFTask(),
        ppo: PPOConfig = PPOConfig(),
        reward_function: Optional[RewardFunction] = None,
        seed: int = 0,
    ) -> None:
        self.task = task
        self.ppo = ppo
        self.rng = np.random.default_rng(seed)
        self.actor = TinyLM(task.model_config(), seed=seed)
        self.critic = TinyLM(task.model_config(is_critic=True), seed=seed + 1)
        self.reference = self.actor.clone(seed=seed + 2)
        self.reward_function = reward_function or task.reward_function()
        self.actor_optimizer = Adam(self.actor.parameters(), lr=ppo.learning_rate)
        self.critic_optimizer = Adam(self.critic.parameters(), lr=ppo.learning_rate)
        self.history: List[IterationStats] = []
        self._iteration = 0

    # ------------------------------------------------------------------ #
    # One RLHF iteration = the six model function calls of Figure 4
    # ------------------------------------------------------------------ #
    def step(self) -> IterationStats:
        """Run one full RLHF iteration and return its statistics."""
        task, ppo = self.task, self.ppo
        prompts = task.sample_prompts(self.rng)

        # 1. Actor generation.
        generation = generate(
            self.actor,
            prompts,
            GenerationConfig(max_new_tokens=task.gen_len, seed=int(self.rng.integers(1 << 31))),
        )
        sequences = generation.sequences
        prompt_len = generation.prompt_len
        response_slice = slice(prompt_len - 1, sequences.shape[1] - 1)

        # 2-4. Reward, reference and critic inference.
        sparse_rewards = np.asarray(self.reward_function(sequences, prompt_len))
        with no_grad():
            old_log_probs = self.actor.token_log_probs(sequences).numpy()[:, response_slice]
            ref_log_probs = self.reference.token_log_probs(sequences).numpy()[:, response_slice]
            values = self.critic.forward(sequences).numpy()[:, response_slice]

        rewards = kl_penalty_rewards(sparse_rewards, old_log_probs, ref_log_probs, ppo.kl_coef)
        advantages, returns = compute_gae(rewards, values, ppo.gamma, ppo.gae_lambda)
        advantages = whiten(advantages)

        # 5-6. Actor and critic training over sequential minibatches.
        batch = sequences.shape[0]
        minibatch = max(1, batch // ppo.n_minibatches)
        policy_losses, value_losses = [], []
        for start in range(0, batch, minibatch):
            idx = slice(start, start + minibatch)
            new_log_probs = self.actor.token_log_probs(sequences[idx])
            new_log_probs = _slice_columns(new_log_probs, response_slice)
            policy_loss = ppo_policy_loss(
                new_log_probs, old_log_probs[idx], advantages[idx], ppo.clip_ratio
            )
            self.actor_optimizer.zero_grad()
            policy_loss.backward()
            self.actor_optimizer.step()
            policy_losses.append(policy_loss.item())

            new_values = self.critic.forward(sequences[idx])
            new_values = _slice_columns(new_values, response_slice)
            value_loss = ppo_value_loss(new_values, values[idx], returns[idx], ppo.value_clip)
            self.critic_optimizer.zero_grad()
            value_loss.backward()
            self.critic_optimizer.step()
            value_losses.append(value_loss.item())

        self._iteration += 1
        stats = IterationStats(
            iteration=self._iteration,
            mean_reward=float(sparse_rewards.mean()),
            policy_loss=float(np.mean(policy_losses)),
            value_loss=float(np.mean(value_losses)),
            kl_to_ref=float((old_log_probs - ref_log_probs).mean()),
        )
        self.history.append(stats)
        return stats

    def train(self, n_iterations: int) -> List[IterationStats]:
        """Run several iterations and return their statistics."""
        return [self.step() for _ in range(n_iterations)]


class DPOTrainer:
    """Direct preference optimization on synthetic preference pairs."""

    def __init__(self, task: RLHFTask = RLHFTask(), beta: float = 0.1, lr: float = 1e-3, seed: int = 0) -> None:
        self.task = task
        self.beta = beta
        self.rng = np.random.default_rng(seed)
        self.actor = TinyLM(task.model_config(), seed=seed)
        self.reference = self.actor.clone(seed=seed + 1)
        self.optimizer = Adam(self.actor.parameters(), lr=lr)
        self.reward_function = task.reward_function()
        self.history: List[IterationStats] = []

    def _make_pairs(self) -> tuple[np.ndarray, np.ndarray]:
        """Sample two continuations per prompt and order them by reward."""
        prompts = self.task.sample_prompts(self.rng)
        gen_a = generate(self.actor, prompts, GenerationConfig(
            max_new_tokens=self.task.gen_len, seed=int(self.rng.integers(1 << 31))))
        gen_b = generate(self.actor, prompts, GenerationConfig(
            max_new_tokens=self.task.gen_len, seed=int(self.rng.integers(1 << 31))))
        rewards_a = self.reward_function(gen_a.sequences, self.task.prompt_len)
        rewards_b = self.reward_function(gen_b.sequences, self.task.prompt_len)
        chosen = np.where(rewards_a[:, None] >= rewards_b[:, None], gen_a.sequences, gen_b.sequences)
        rejected = np.where(rewards_a[:, None] >= rewards_b[:, None], gen_b.sequences, gen_a.sequences)
        return chosen, rejected

    def step(self) -> IterationStats:
        """One DPO iteration: reference inference plus actor training."""
        chosen, rejected = self._make_pairs()
        response_slice = slice(self.task.prompt_len - 1, chosen.shape[1] - 1)
        with no_grad():
            ref_chosen = self.reference.token_log_probs(chosen).numpy()[:, response_slice].sum(axis=1)
            ref_rejected = self.reference.token_log_probs(rejected).numpy()[:, response_slice].sum(axis=1)
        policy_chosen = _slice_columns(self.actor.token_log_probs(chosen), response_slice).sum(axis=1)
        policy_rejected = _slice_columns(self.actor.token_log_probs(rejected), response_slice).sum(axis=1)
        loss = dpo_loss(policy_chosen, policy_rejected, ref_chosen, ref_rejected, self.beta)
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        reward = float(self.reward_function(chosen, self.task.prompt_len).mean())
        stats = IterationStats(iteration=len(self.history) + 1, mean_reward=reward, policy_loss=loss.item())
        self.history.append(stats)
        return stats

    def train(self, n_iterations: int) -> List[IterationStats]:
        return [self.step() for _ in range(n_iterations)]


class ReMaxTrainer:
    """ReMax: REINFORCE with a greedy-decoding baseline (no critic)."""

    def __init__(self, task: RLHFTask = RLHFTask(), lr: float = 1e-3, seed: int = 0) -> None:
        self.task = task
        self.rng = np.random.default_rng(seed)
        self.actor = TinyLM(task.model_config(), seed=seed)
        self.optimizer = Adam(self.actor.parameters(), lr=lr)
        self.reward_function = task.reward_function()
        self.history: List[IterationStats] = []

    def step(self) -> IterationStats:
        """One ReMax iteration: two generations, two reward calls, one update."""
        prompts = self.task.sample_prompts(self.rng)
        sampled = generate(self.actor, prompts, GenerationConfig(
            max_new_tokens=self.task.gen_len, seed=int(self.rng.integers(1 << 31))))
        greedy = generate(self.actor, prompts, GenerationConfig(
            max_new_tokens=self.task.gen_len, greedy=True))
        sample_rewards = self.reward_function(sampled.sequences, self.task.prompt_len)
        greedy_rewards = self.reward_function(greedy.sequences, self.task.prompt_len)
        response_slice = slice(self.task.prompt_len - 1, sampled.sequences.shape[1] - 1)
        log_probs = _slice_columns(self.actor.token_log_probs(sampled.sequences), response_slice)
        loss = remax_policy_loss(log_probs, sample_rewards, greedy_rewards)
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        stats = IterationStats(
            iteration=len(self.history) + 1,
            mean_reward=float(np.mean(sample_rewards)),
            policy_loss=loss.item(),
        )
        self.history.append(stats)
        return stats

    def train(self, n_iterations: int) -> List[IterationStats]:
        return [self.step() for _ in range(n_iterations)]


class GRPOTrainer:
    """GRPO: grouped sampling with group-normalised advantages (no critic)."""

    def __init__(self, task: RLHFTask = RLHFTask(), group_size: int = 4, lr: float = 1e-3, seed: int = 0) -> None:
        if group_size < 2:
            raise ValueError("group_size must be >= 2")
        self.task = task
        self.group_size = group_size
        self.rng = np.random.default_rng(seed)
        self.actor = TinyLM(task.model_config(), seed=seed)
        self.optimizer = Adam(self.actor.parameters(), lr=lr)
        self.reward_function = task.reward_function()
        self.history: List[IterationStats] = []

    def step(self) -> IterationStats:
        """One GRPO iteration: grouped generation, reward inference, training."""
        prompts = self.task.sample_prompts(self.rng)
        grouped_prompts = np.repeat(prompts, self.group_size, axis=0)
        generation = generate(self.actor, grouped_prompts, GenerationConfig(
            max_new_tokens=self.task.gen_len, seed=int(self.rng.integers(1 << 31))))
        rewards = self.reward_function(generation.sequences, self.task.prompt_len)
        response_slice = slice(self.task.prompt_len - 1, generation.sequences.shape[1] - 1)
        with no_grad():
            old_log_probs = self.actor.token_log_probs(generation.sequences).numpy()[:, response_slice]
        new_log_probs = _slice_columns(self.actor.token_log_probs(generation.sequences), response_slice)
        loss = grpo_policy_loss(new_log_probs, old_log_probs, rewards, self.group_size)
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        stats = IterationStats(
            iteration=len(self.history) + 1,
            mean_reward=float(np.mean(rewards)),
            policy_loss=loss.item(),
        )
        self.history.append(stats)
        return stats

    def train(self, n_iterations: int) -> List[IterationStats]:
        return [self.step() for _ in range(n_iterations)]


def _slice_columns(tensor: Tensor, columns: slice) -> Tensor:
    """Differentiable column slice of a ``(batch, T)`` tensor."""
    out_data = tensor.data[:, columns]

    def backward(grad: np.ndarray) -> None:
        if tensor.requires_grad:
            full = np.zeros_like(tensor.data)
            full[:, columns] = grad
            tensor._accumulate(full)

    requires = tensor.requires_grad
    return Tensor(out_data, requires_grad=requires, _parents=(tensor,) if requires else (),
                  _backward=backward if requires else None)
