"""Direct Preference Optimization loss (Rafailov et al., 2023).

DPO needs only the actor and a frozen reference model: given the summed
log-probabilities of a preferred and a rejected completion under both models,
the loss pushes the actor's implicit reward margin above the reference's.
"""

from __future__ import annotations

import numpy as np

from .autograd import Tensor

__all__ = ["dpo_loss", "dpo_implicit_rewards"]


def dpo_loss(
    policy_chosen_logps: Tensor,
    policy_rejected_logps: Tensor,
    ref_chosen_logps: np.ndarray,
    ref_rejected_logps: np.ndarray,
    beta: float = 0.1,
) -> Tensor:
    """The DPO objective: ``-log sigmoid(beta * (margin_policy - margin_ref))``.

    The policy log-probabilities are differentiable tensors of shape
    ``(batch,)`` (summed over response tokens); the reference values are fixed
    arrays of the same shape.
    """
    ref_chosen = Tensor(np.asarray(ref_chosen_logps, dtype=np.float64))
    ref_rejected = Tensor(np.asarray(ref_rejected_logps, dtype=np.float64))
    policy_margin = policy_chosen_logps - policy_rejected_logps
    ref_margin = ref_chosen - ref_rejected
    logits = (policy_margin - ref_margin) * beta
    return (logits.logsigmoid() * -1.0).mean()


def dpo_implicit_rewards(
    policy_logps: np.ndarray, ref_logps: np.ndarray, beta: float = 0.1
) -> np.ndarray:
    """The implicit reward ``beta * (log pi - log pi_ref)`` used for evaluation."""
    return beta * (np.asarray(policy_logps) - np.asarray(ref_logps))
