"""Simulated cluster substrate: hardware specs, device meshes and comm costs."""

from .comm import CommModel, TransferCost
from .hardware import (
    DEFAULT_INTERCONNECT,
    GB,
    H100_SPEC,
    ClusterSpec,
    GPUSpec,
    InterconnectSpec,
    make_cluster,
)
from .topology import (
    DeviceMesh,
    enumerate_device_meshes,
    full_cluster_mesh,
    meshes_tile_cluster,
)

__all__ = [
    "GB",
    "GPUSpec",
    "InterconnectSpec",
    "ClusterSpec",
    "H100_SPEC",
    "DEFAULT_INTERCONNECT",
    "make_cluster",
    "DeviceMesh",
    "enumerate_device_meshes",
    "full_cluster_mesh",
    "meshes_tile_cluster",
    "CommModel",
    "TransferCost",
]
