"""Hardware specifications for the simulated GPU cluster.

The paper evaluates ReaL on a cluster of 8--128 NVIDIA H100 GPUs connected by
NVLink inside a node and 3.2 Tbps RoCE across nodes.  This module provides an
analytical stand-in for that hardware: peak compute throughput, HBM bandwidth,
memory capacity, interconnect bandwidths and the various fixed overheads
(kernel launch, RPC dispatch, collective latency) that shape the cost model.

All bandwidths are expressed in GB/s (1e9 bytes per second) and all times in
seconds.  The numbers below are public H100-SXM5 specifications de-rated by an
achievable-efficiency factor, so that the *relative* costs of compute-bound
and memory-bound phases (training forward/backward vs. auto-regressive
decoding) match the behaviour the paper reports.

Clusters can be *carved*: :meth:`ClusterSpec.sub_cluster` returns a smaller
cluster of the same hardware covering ``n_nodes`` whole hosts (or an aligned
slice of a single host), mirroring the device-mesh validity rules of
:mod:`repro.cluster.topology`.  The multi-job scheduler
(:mod:`repro.sched`) uses it to hand each admitted job a mesh-shaped
partition of the shared cluster that the planner can treat as a dedicated
cluster.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "GPUSpec",
    "InterconnectSpec",
    "ClusterSpec",
    "H100_SPEC",
    "DEFAULT_INTERCONNECT",
    "make_cluster",
]

GB = 1e9
"""Number of bytes in a gigabyte (decimal, matching bandwidth units)."""


@dataclass(frozen=True)
class GPUSpec:
    """Static description of a single accelerator.

    Attributes
    ----------
    name:
        Human readable device name.
    peak_tflops:
        Peak dense BF16 throughput in TFLOP/s (no sparsity).
    memory_gb:
        HBM capacity in GB available to a single process.
    hbm_bandwidth_gbps:
        Peak HBM read/write bandwidth in GB/s.
    compute_efficiency:
        Fraction of ``peak_tflops`` achievable by large dense GEMMs
        (model-flops-utilisation of well tuned training kernels).
    decode_efficiency:
        Fraction of ``hbm_bandwidth_gbps`` achievable by memory-bound
        auto-regressive decoding kernels.
    kernel_launch_overhead_s:
        Fixed host-side overhead per launched kernel.  Auto-regressive
        decoding launches many small kernels, so this term dominates when
        CUDA-graph capture is disabled (Table 6 of the paper).
    cuda_graph_speedup:
        Factor by which CUDA-graph capture reduces the per-kernel launch
        overhead during decoding.
    pcie_bandwidth_gbps:
        Host-device bandwidth used for parameter offloading.
    """

    name: str = "H100-SXM5"
    peak_tflops: float = 989.0
    memory_gb: float = 80.0
    hbm_bandwidth_gbps: float = 3350.0
    compute_efficiency: float = 0.50
    decode_efficiency: float = 0.60
    kernel_launch_overhead_s: float = 12e-6
    cuda_graph_speedup: float = 8.0
    pcie_bandwidth_gbps: float = 55.0

    def __post_init__(self) -> None:
        if self.peak_tflops <= 0:
            raise ValueError(f"peak_tflops must be positive, got {self.peak_tflops}")
        if self.memory_gb <= 0:
            raise ValueError(f"memory_gb must be positive, got {self.memory_gb}")
        if not (0.0 < self.compute_efficiency <= 1.0):
            raise ValueError("compute_efficiency must be in (0, 1]")
        if not (0.0 < self.decode_efficiency <= 1.0):
            raise ValueError("decode_efficiency must be in (0, 1]")

    @property
    def memory_bytes(self) -> float:
        """Usable HBM capacity in bytes."""
        return self.memory_gb * GB

    @property
    def achievable_flops(self) -> float:
        """Sustained dense FLOP/s for compute-bound kernels."""
        return self.peak_tflops * 1e12 * self.compute_efficiency

    @property
    def achievable_hbm_bandwidth(self) -> float:
        """Sustained HBM bandwidth (bytes/s) for memory-bound kernels."""
        return self.hbm_bandwidth_gbps * GB * self.decode_efficiency

    @property
    def pcie_bandwidth(self) -> float:
        """Host-device bandwidth in bytes/s."""
        return self.pcie_bandwidth_gbps * GB


@dataclass(frozen=True)
class InterconnectSpec:
    """Bandwidths and latencies of the intra- and inter-node fabrics.

    Attributes
    ----------
    intra_node_bandwidth_gbps:
        Per-GPU NVLink bandwidth in GB/s (unidirectional).
    inter_node_bandwidth_gbps:
        Per-node network bandwidth in GB/s.  The paper's cluster uses
        3.2 Tbps RoCE per node, i.e. 400 GB/s.
    intra_node_latency_s:
        Base latency of an intra-node point-to-point transfer.
    inter_node_latency_s:
        Base latency of an inter-node point-to-point transfer.
    collective_latency_s:
        Additional fixed cost per collective operation (NCCL setup).
    """

    intra_node_bandwidth_gbps: float = 450.0
    inter_node_bandwidth_gbps: float = 400.0
    intra_node_latency_s: float = 3e-6
    inter_node_latency_s: float = 12e-6
    collective_latency_s: float = 20e-6

    def __post_init__(self) -> None:
        if self.intra_node_bandwidth_gbps <= 0:
            raise ValueError("intra_node_bandwidth_gbps must be positive")
        if self.inter_node_bandwidth_gbps <= 0:
            raise ValueError("inter_node_bandwidth_gbps must be positive")

    @property
    def intra_node_bandwidth(self) -> float:
        """Intra-node bandwidth in bytes/s."""
        return self.intra_node_bandwidth_gbps * GB

    @property
    def inter_node_bandwidth(self) -> float:
        """Inter-node (per node) bandwidth in bytes/s."""
        return self.inter_node_bandwidth_gbps * GB


H100_SPEC = GPUSpec()
"""Default GPU specification used throughout the reproduction."""

DEFAULT_INTERCONNECT = InterconnectSpec()
"""Default NVLink + RoCE interconnect matching the paper's cluster."""


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of ``n_nodes`` nodes with ``gpus_per_node`` GPUs.

    The paper assumes all devices have identical compute capability with the
    same intra-node and inter-node bandwidths (Section 4), which is exactly
    what this class models.
    """

    n_nodes: int
    gpus_per_node: int = 8
    gpu: GPUSpec = H100_SPEC
    interconnect: InterconnectSpec = DEFAULT_INTERCONNECT
    rpc_overhead_s: float = 200e-6
    """Master-worker request dispatch overhead per model function call."""

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.gpus_per_node < 1:
            raise ValueError(f"gpus_per_node must be >= 1, got {self.gpus_per_node}")

    @property
    def n_gpus(self) -> int:
        """Total number of GPUs in the cluster."""
        return self.n_nodes * self.gpus_per_node

    @property
    def total_memory_bytes(self) -> float:
        """Aggregate HBM capacity of the cluster in bytes."""
        return self.n_gpus * self.gpu.memory_bytes

    @property
    def device_memory_bytes(self) -> float:
        """Per-device HBM capacity in bytes (``mem_d`` in the paper)."""
        return self.gpu.memory_bytes

    def node_of(self, gpu_id: int) -> int:
        """Return the node index hosting global GPU ``gpu_id``."""
        if not (0 <= gpu_id < self.n_gpus):
            raise ValueError(f"gpu_id {gpu_id} out of range for {self.n_gpus} GPUs")
        return gpu_id // self.gpus_per_node

    def local_rank_of(self, gpu_id: int) -> int:
        """Return the within-node rank of global GPU ``gpu_id``."""
        if not (0 <= gpu_id < self.n_gpus):
            raise ValueError(f"gpu_id {gpu_id} out of range for {self.n_gpus} GPUs")
        return gpu_id % self.gpus_per_node

    def same_node(self, gpu_a: int, gpu_b: int) -> bool:
        """Whether two global GPU indices live on the same node."""
        return self.node_of(gpu_a) == self.node_of(gpu_b)

    def with_nodes(self, n_nodes: int) -> "ClusterSpec":
        """Return a copy of this spec with a different node count."""
        return dataclasses.replace(self, n_nodes=n_nodes)

    def sub_cluster(
        self, n_nodes: int, n_gpus_per_node: Optional[int] = None
    ) -> "ClusterSpec":
        """Carve a mesh-shaped sub-cluster out of this cluster.

        The sub-cluster keeps the GPU, interconnect and RPC-overhead specs and
        follows the same validity rules as device meshes (Section 4 of the
        paper): it either spans ``n_nodes`` *entire* hosts
        (``n_gpus_per_node == gpus_per_node``), or an aligned slice of a
        single host whose width divides ``gpus_per_node``.  The returned spec
        is indistinguishable from a dedicated cluster of that shape, which is
        what lets the multi-job scheduler (:mod:`repro.sched`) plan each
        job's partition through the unmodified planner and share plan-cache
        entries between same-shaped partitions.
        """
        width = self.gpus_per_node if n_gpus_per_node is None else n_gpus_per_node
        if not (1 <= n_nodes <= self.n_nodes):
            raise ValueError(
                f"sub-cluster n_nodes must be in [1, {self.n_nodes}], got {n_nodes}"
            )
        if not (1 <= width <= self.gpus_per_node):
            raise ValueError(
                f"sub-cluster width must be in [1, {self.gpus_per_node}], got {width}"
            )
        if n_nodes > 1 and width != self.gpus_per_node:
            raise ValueError(
                "multi-node sub-clusters must span entire hosts "
                f"(width {width} != {self.gpus_per_node} gpus per node)"
            )
        if self.gpus_per_node % width != 0:
            raise ValueError(
                f"sub-node width {width} must divide gpus_per_node "
                f"({self.gpus_per_node})"
            )
        return dataclasses.replace(self, n_nodes=n_nodes, gpus_per_node=width)


def make_cluster(
    n_gpus: int,
    gpus_per_node: int = 8,
    gpu: GPUSpec = H100_SPEC,
    interconnect: InterconnectSpec = DEFAULT_INTERCONNECT,
) -> ClusterSpec:
    """Build a :class:`ClusterSpec` from a total GPU count.

    ``n_gpus`` smaller than ``gpus_per_node`` produces a single partially
    populated node; otherwise ``n_gpus`` must be a multiple of
    ``gpus_per_node``.
    """
    if n_gpus < 1:
        raise ValueError(f"n_gpus must be >= 1, got {n_gpus}")
    if n_gpus < gpus_per_node:
        return ClusterSpec(n_nodes=1, gpus_per_node=n_gpus, gpu=gpu, interconnect=interconnect)
    if n_gpus % gpus_per_node != 0:
        raise ValueError(
            f"n_gpus ({n_gpus}) must be a multiple of gpus_per_node ({gpus_per_node})"
        )
    return ClusterSpec(
        n_nodes=n_gpus // gpus_per_node,
        gpus_per_node=gpus_per_node,
        gpu=gpu,
        interconnect=interconnect,
    )
