"""Device meshes: rectangular slices of the cluster assigned to function calls.

The paper (Section 4) defines a device mesh ``D`` as a two-dimensional grid of
GPUs of shape ``(N, M)``.  Valid meshes either

* cover one or more *entire* hosts, i.e. shape ``(k, gpus_per_node)``, or
* cover a consecutive portion of a single host whose size divides the number
  of GPUs on that host, e.g. shapes ``(1, 1)``, ``(1, 2)``, ``(1, 4)`` on an
  8-GPU node.

This guarantees that multiple meshes can tile the cluster exactly, which the
paper relies on to avoid execution plans with permanently idle GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Sequence, Tuple

from .hardware import ClusterSpec

__all__ = [
    "DeviceMesh",
    "enumerate_device_meshes",
    "full_cluster_mesh",
    "meshes_tile_cluster",
]


@dataclass(frozen=True, slots=True)
class DeviceMesh:
    """A rectangular group of GPUs within a :class:`ClusterSpec`.

    Attributes
    ----------
    cluster:
        The cluster this mesh is carved out of.
    node_start:
        Index of the first node covered by the mesh.
    n_nodes:
        Number of consecutive nodes covered.
    gpu_start:
        Within-node index of the first GPU covered (must be 0 for
        multi-node meshes).
    gpus_per_node:
        Number of consecutive GPUs covered on each node.
    """

    cluster: ClusterSpec
    node_start: int
    n_nodes: int
    gpu_start: int
    gpus_per_node: int

    def __post_init__(self) -> None:
        c = self.cluster
        if self.n_nodes < 1 or self.gpus_per_node < 1:
            raise ValueError("mesh must contain at least one GPU")
        if self.node_start < 0 or self.node_start + self.n_nodes > c.n_nodes:
            raise ValueError(
                f"mesh nodes [{self.node_start}, {self.node_start + self.n_nodes}) "
                f"exceed cluster of {c.n_nodes} nodes"
            )
        if self.gpus_per_node > c.gpus_per_node:
            raise ValueError("mesh is wider than the node")
        if self.n_nodes > 1:
            if self.gpus_per_node != c.gpus_per_node or self.gpu_start != 0:
                raise ValueError("multi-node meshes must cover entire hosts")
        else:
            if c.gpus_per_node % self.gpus_per_node != 0:
                raise ValueError(
                    "sub-node mesh width must divide the number of GPUs per node"
                )
            if self.gpu_start % self.gpus_per_node != 0:
                raise ValueError("sub-node mesh must be aligned to its width")
            if self.gpu_start + self.gpus_per_node > c.gpus_per_node:
                raise ValueError("sub-node mesh exceeds the node")

    # ------------------------------------------------------------------ #
    # Basic geometry
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, int]:
        """The ``(N, M)`` shape used in the paper's notation."""
        return (self.n_nodes, self.gpus_per_node)

    @property
    def n_gpus(self) -> int:
        """Number of GPUs in the mesh."""
        return self.n_nodes * self.gpus_per_node

    @property
    def spans_nodes(self) -> bool:
        """Whether the mesh covers more than one node."""
        return self.n_nodes > 1

    @property
    def is_sub_node(self) -> bool:
        """Whether the mesh covers only part of a single node."""
        return self.n_nodes == 1 and self.gpus_per_node < self.cluster.gpus_per_node

    @property
    def device_ids(self) -> Tuple[int, ...]:
        """Global GPU indices covered by the mesh, in row-major order."""
        ids: List[int] = []
        for node in range(self.node_start, self.node_start + self.n_nodes):
            base = node * self.cluster.gpus_per_node + self.gpu_start
            ids.extend(range(base, base + self.gpus_per_node))
        return tuple(ids)

    @property
    def device_id_set(self) -> FrozenSet[int]:
        """Global GPU indices as a frozen set (for overlap queries)."""
        return frozenset(self.device_ids)

    @property
    def node_ids(self) -> Tuple[int, ...]:
        """Node indices covered by the mesh."""
        return tuple(range(self.node_start, self.node_start + self.n_nodes))

    # ------------------------------------------------------------------ #
    # Relations between meshes
    # ------------------------------------------------------------------ #
    def overlaps(self, other: "DeviceMesh") -> bool:
        """Whether this mesh shares at least one GPU with ``other``."""
        return bool(self.device_id_set & other.device_id_set)

    def contains(self, other: "DeviceMesh") -> bool:
        """Whether every GPU of ``other`` is also part of this mesh."""
        return other.device_id_set <= self.device_id_set

    def is_full_cluster(self) -> bool:
        """Whether the mesh covers the entire cluster."""
        return self.n_gpus == self.cluster.n_gpus

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DeviceMesh(nodes {self.node_start}..{self.node_start + self.n_nodes - 1}, "
            f"gpus {self.gpu_start}..{self.gpu_start + self.gpus_per_node - 1}, "
            f"shape={self.shape})"
        )

    def describe(self) -> str:
        """Return a SLURM-style node list string, e.g. ``trainer[01-04]``."""
        first = self.node_start + 1
        last = self.node_start + self.n_nodes
        if self.is_sub_node:
            return (
                f"trainer{first:02d}"
                f"[gpu{self.gpu_start}-{self.gpu_start + self.gpus_per_node - 1}]"
            )
        if first == last:
            return f"trainer{first:02d}"
        return f"trainer[{first:02d}-{last:02d}]"


def full_cluster_mesh(cluster: ClusterSpec) -> DeviceMesh:
    """The device mesh covering every GPU of ``cluster``."""
    return DeviceMesh(
        cluster=cluster,
        node_start=0,
        n_nodes=cluster.n_nodes,
        gpu_start=0,
        gpus_per_node=cluster.gpus_per_node,
    )


def _sub_node_widths(gpus_per_node: int) -> Iterator[int]:
    """Yield all widths that divide ``gpus_per_node`` (including itself)."""
    for width in range(1, gpus_per_node + 1):
        if gpus_per_node % width == 0:
            yield width


def enumerate_device_meshes(
    cluster: ClusterSpec,
    min_gpus: int = 1,
    max_gpus: int | None = None,
) -> List[DeviceMesh]:
    """Enumerate every valid device mesh in ``cluster``.

    Valid meshes are sub-node slices whose width divides the node size plus
    all multi-node meshes covering consecutive whole hosts, as described in
    Section 4 of the paper.  ``min_gpus``/``max_gpus`` optionally restrict the
    mesh size.
    """
    if max_gpus is None:
        max_gpus = cluster.n_gpus
    meshes: List[DeviceMesh] = []
    # Sub-node and single full-node meshes.
    for width in _sub_node_widths(cluster.gpus_per_node):
        if not (min_gpus <= width <= max_gpus):
            continue
        for node in range(cluster.n_nodes):
            for start in range(0, cluster.gpus_per_node, width):
                meshes.append(
                    DeviceMesh(
                        cluster=cluster,
                        node_start=node,
                        n_nodes=1,
                        gpu_start=start,
                        gpus_per_node=width,
                    )
                )
    # Multi-node meshes covering whole hosts.
    for span in range(2, cluster.n_nodes + 1):
        size = span * cluster.gpus_per_node
        if not (min_gpus <= size <= max_gpus):
            continue
        for node in range(cluster.n_nodes - span + 1):
            meshes.append(
                DeviceMesh(
                    cluster=cluster,
                    node_start=node,
                    n_nodes=span,
                    gpu_start=0,
                    gpus_per_node=cluster.gpus_per_node,
                )
            )
    return meshes


def meshes_tile_cluster(meshes: Sequence[DeviceMesh], cluster: ClusterSpec) -> bool:
    """Whether ``meshes`` are pairwise disjoint and together cover ``cluster``."""
    covered: set[int] = set()
    for mesh in meshes:
        ids = mesh.device_id_set
        if covered & ids:
            return False
        covered |= ids
    return len(covered) == cluster.n_gpus
