"""Analytical cost models for collective and point-to-point communication.

These are the classical alpha-beta (latency + bandwidth) models used by
Megatron-LM- and Alpa-style planners.  The estimator in
:mod:`repro.core.estimator` and the runtime engine in
:mod:`repro.runtime.engine` both consume this module, so the relative weight
of tensor-parallel all-reduces, pipeline point-to-point sends, data-parallel
gradient reductions and parameter-reallocation broadcasts is consistent
throughout the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .hardware import ClusterSpec
from .topology import DeviceMesh

__all__ = ["CommModel", "TransferCost"]


@dataclass(frozen=True)
class TransferCost:
    """Time and byte volume of a single communication operation."""

    seconds: float
    bytes: float

    def __add__(self, other: "TransferCost") -> "TransferCost":
        return TransferCost(self.seconds + other.seconds, self.bytes + other.bytes)


class CommModel:
    """Alpha-beta communication cost model over a :class:`ClusterSpec`.

    Every method returns time in seconds.  Operations spanning multiple nodes
    are charged against the (slower) inter-node bandwidth, operations within a
    node against the NVLink bandwidth; a transfer between a GPU and itself is
    free.
    """

    def __init__(self, cluster: ClusterSpec) -> None:
        self.cluster = cluster
        self._ic = cluster.interconnect

    # ------------------------------------------------------------------ #
    # Link primitives
    # ------------------------------------------------------------------ #
    def link_bandwidth(self, cross_node: bool) -> float:
        """Point-to-point bandwidth (bytes/s) of a single link."""
        if cross_node:
            # The node NIC is shared by all GPUs on the node; a single p2p
            # stream typically cannot saturate it, so we charge the per-GPU
            # share of the node bandwidth.
            return self._ic.inter_node_bandwidth / self.cluster.gpus_per_node
        return self._ic.intra_node_bandwidth

    def link_latency(self, cross_node: bool) -> float:
        """Base latency (seconds) of a single point-to-point transfer."""
        return self._ic.inter_node_latency_s if cross_node else self._ic.intra_node_latency_s

    def _group_bandwidth(self, n: int, cross_node: bool) -> float:
        """Per-rank bandwidth available to an ``n``-way collective."""
        if cross_node:
            # Ring collectives across nodes are bottlenecked by the per-node
            # NIC, which every participating GPU on the node shares.
            return self._ic.inter_node_bandwidth / self.cluster.gpus_per_node
        return self._ic.intra_node_bandwidth

    # ------------------------------------------------------------------ #
    # Point-to-point
    # ------------------------------------------------------------------ #
    def p2p_time(self, nbytes: float, src_gpu: int, dst_gpu: int) -> float:
        """Time to send ``nbytes`` from ``src_gpu`` to ``dst_gpu``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if src_gpu == dst_gpu or nbytes == 0:
            return 0.0
        cross = not self.cluster.same_node(src_gpu, dst_gpu)
        return self.link_latency(cross) + nbytes / self.link_bandwidth(cross)

    def p2p_time_cross(self, nbytes: float, cross_node: bool) -> float:
        """P2P time when only the intra/inter-node distinction is known."""
        if nbytes <= 0:
            return 0.0
        return self.link_latency(cross_node) + nbytes / self.link_bandwidth(cross_node)

    def host_device_time(self, nbytes: float) -> float:
        """Time to copy ``nbytes`` between host memory and a GPU (offload)."""
        if nbytes <= 0:
            return 0.0
        return nbytes / self.cluster.gpu.pcie_bandwidth

    # ------------------------------------------------------------------ #
    # Collectives (ring algorithms)
    # ------------------------------------------------------------------ #
    def allreduce_time(self, nbytes: float, n: int, cross_node: bool) -> float:
        """Ring all-reduce of an ``nbytes`` buffer across ``n`` ranks."""
        if n <= 1 or nbytes <= 0:
            return 0.0
        bw = self._group_bandwidth(n, cross_node)
        steps = 2 * (n - 1)
        return (
            self._ic.collective_latency_s
            + steps * self.link_latency(cross_node)
            + 2.0 * (n - 1) / n * nbytes / bw
        )

    def reduce_scatter_time(self, nbytes: float, n: int, cross_node: bool) -> float:
        """Ring reduce-scatter of an ``nbytes`` buffer across ``n`` ranks."""
        if n <= 1 or nbytes <= 0:
            return 0.0
        bw = self._group_bandwidth(n, cross_node)
        return (
            self._ic.collective_latency_s
            + (n - 1) * self.link_latency(cross_node)
            + (n - 1) / n * nbytes / bw
        )

    def allgather_time(self, nbytes: float, n: int, cross_node: bool) -> float:
        """Ring all-gather producing an ``nbytes`` buffer on every rank."""
        return self.reduce_scatter_time(nbytes, n, cross_node)

    def broadcast_time(self, nbytes: float, n_dst: int, cross_node: bool) -> float:
        """Broadcast ``nbytes`` from one rank to ``n_dst`` destination ranks."""
        if n_dst <= 0 or nbytes <= 0:
            return 0.0
        bw = self._group_bandwidth(n_dst + 1, cross_node)
        return (
            self._ic.collective_latency_s
            + self.link_latency(cross_node)
            + nbytes / bw
        )

    # ------------------------------------------------------------------ #
    # Mesh-aware wrappers
    # ------------------------------------------------------------------ #
    @staticmethod
    def group_crosses_nodes(gpu_ids: Iterable[int], cluster: ClusterSpec) -> bool:
        """Whether a communication group spans more than one node."""
        nodes = {cluster.node_of(g) for g in gpu_ids}
        return len(nodes) > 1

    def mesh_allreduce_time(self, nbytes: float, mesh: DeviceMesh, group_size: int) -> float:
        """All-reduce across ``group_size`` ranks placed inside ``mesh``.

        The group is assumed to be laid out contiguously in the mesh's
        row-major device order, so it crosses node boundaries only when it is
        wider than the mesh's per-node width.
        """
        cross = group_size > mesh.gpus_per_node
        return self.allreduce_time(nbytes, group_size, cross)

    def broadcast_group_time(
        self,
        nbytes: float,
        src_gpu: int,
        dst_gpus: Sequence[int],
    ) -> float:
        """Broadcast ``nbytes`` from ``src_gpu`` to an explicit destination set.

        Destinations identical to the source are free.  Used by the parameter
        reallocation planner (Figure 6 in the paper).
        """
        real_dsts = [g for g in dst_gpus if g != src_gpu]
        if not real_dsts or nbytes <= 0:
            return 0.0
        cross = any(not self.cluster.same_node(src_gpu, d) for d in real_dsts)
        return self.broadcast_time(nbytes, len(real_dsts), cross)
