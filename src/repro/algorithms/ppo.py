"""The PPO RLHF dataflow graph (Figure 4 of the paper).

One PPO iteration performs six model function calls on four LLMs: the actor
generates responses to a batch of prompts; the reward, reference and critic
models run inference over the generated sequences; and finally the actor and
critic are trained on the resulting advantages, each over several sequential
PPO minibatches.
"""

from __future__ import annotations

from ..core.dataflow import DataflowGraph, FunctionCallType, ModelFunctionCall

__all__ = ["build_ppo_graph", "PPO_CALL_NAMES"]

PPO_CALL_NAMES = (
    "actor_generate",
    "reward_inference",
    "ref_inference",
    "critic_inference",
    "actor_train",
    "critic_train",
)
"""The six function call names of the PPO workflow, in topological order."""


def build_ppo_graph() -> DataflowGraph:
    """Build the standard PPO dataflow graph.

    Data dependencies: the three inference calls all consume the generated
    sequences; actor training consumes rewards, reference log-probs and
    values (via advantages); critic training consumes rewards and values.
    """
    calls = [
        ModelFunctionCall(
            name="actor_generate",
            model_name="actor",
            call_type=FunctionCallType.GENERATE,
            input_keys=("prompts",),
            output_keys=("seq", "logp"),
        ),
        ModelFunctionCall(
            name="reward_inference",
            model_name="reward",
            call_type=FunctionCallType.INFERENCE,
            input_keys=("seq",),
            output_keys=("rewards",),
        ),
        ModelFunctionCall(
            name="ref_inference",
            model_name="ref",
            call_type=FunctionCallType.INFERENCE,
            input_keys=("seq",),
            output_keys=("ref_logp",),
        ),
        ModelFunctionCall(
            name="critic_inference",
            model_name="critic",
            call_type=FunctionCallType.INFERENCE,
            input_keys=("seq",),
            output_keys=("values",),
        ),
        ModelFunctionCall(
            name="actor_train",
            model_name="actor",
            call_type=FunctionCallType.TRAIN_STEP,
            input_keys=("seq", "logp", "rewards", "ref_logp", "values"),
            output_keys=("actor_update",),
        ),
        ModelFunctionCall(
            name="critic_train",
            model_name="critic",
            call_type=FunctionCallType.TRAIN_STEP,
            input_keys=("seq", "rewards", "ref_logp", "values"),
            output_keys=("critic_update",),
        ),
    ]
    return DataflowGraph(calls=calls, external_inputs=("prompts",), name="ppo")
