"""Registry of RLHF algorithm dataflow-graph builders.

Any RLHF algorithm representable as a DAG of generation, inference and
training calls can be planned by ReaL (Section 4, "Beyond PPO").  New
algorithms register a builder here and immediately benefit from the plan
search, the runtime engine and the benchmark harness.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..core.dataflow import DataflowGraph
from .dpo import build_dpo_graph
from .grpo import build_grpo_graph
from .ppo import build_ppo_graph
from .remax import build_remax_graph

__all__ = ["ALGORITHMS", "build_graph", "available_algorithms", "register_algorithm"]

GraphBuilder = Callable[[], DataflowGraph]

ALGORITHMS: Dict[str, GraphBuilder] = {
    "ppo": build_ppo_graph,
    "dpo": build_dpo_graph,
    "grpo": build_grpo_graph,
    "remax": build_remax_graph,
}


def available_algorithms() -> List[str]:
    """Names of all registered RLHF algorithms."""
    return sorted(ALGORITHMS)


def build_graph(algorithm: str) -> DataflowGraph:
    """Build the dataflow graph of a registered algorithm."""
    key = algorithm.lower()
    if key not in ALGORITHMS:
        raise KeyError(
            f"unknown RLHF algorithm {algorithm!r}; available: {available_algorithms()}"
        )
    return ALGORITHMS[key]()


def register_algorithm(name: str, builder: GraphBuilder, overwrite: bool = False) -> None:
    """Register a new algorithm's dataflow-graph builder.

    Raises ``ValueError`` if the name is taken and ``overwrite`` is False.
    """
    key = name.lower()
    if key in ALGORITHMS and not overwrite:
        raise ValueError(f"algorithm {name!r} is already registered")
    ALGORITHMS[key] = builder
