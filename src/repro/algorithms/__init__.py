"""Dataflow-graph builders for PPO, DPO, GRPO and ReMax."""

from .dpo import build_dpo_graph
from .grpo import DEFAULT_GROUP_SIZE, build_grpo_graph
from .ppo import PPO_CALL_NAMES, build_ppo_graph
from .registry import ALGORITHMS, available_algorithms, build_graph, register_algorithm
from .remax import build_remax_graph

__all__ = [
    "build_ppo_graph",
    "PPO_CALL_NAMES",
    "build_dpo_graph",
    "build_grpo_graph",
    "DEFAULT_GROUP_SIZE",
    "build_remax_graph",
    "ALGORITHMS",
    "build_graph",
    "available_algorithms",
    "register_algorithm",
]
