"""The ReMax dataflow graph (Figure 16 of the paper).

ReMax replaces the learned critic baseline with a greedy-decoding baseline:
the actor performs *two* generation calls per iteration (stochastic sampling
and greedy decoding), the reward model scores both, and the difference of the
two rewards is the advantage used to train the actor.  Because the two
generation calls are independent, a good execution plan runs them
concurrently — the paper reports ReMax as the algorithm benefiting most from
ReaL's reallocation (+190%).
"""

from __future__ import annotations

from ..core.dataflow import DataflowGraph, FunctionCallType, ModelFunctionCall

__all__ = ["build_remax_graph"]


def build_remax_graph() -> DataflowGraph:
    """Build the ReMax dataflow graph with its two concurrent generation calls."""
    calls = [
        ModelFunctionCall(
            name="actor_sample_generate",
            model_name="actor",
            call_type=FunctionCallType.GENERATE,
            input_keys=("prompts",),
            output_keys=("sample_seq", "sample_logp"),
        ),
        ModelFunctionCall(
            name="actor_greedy_generate",
            model_name="actor",
            call_type=FunctionCallType.GENERATE,
            input_keys=("prompts",),
            output_keys=("greedy_seq",),
        ),
        ModelFunctionCall(
            name="sample_reward_inference",
            model_name="reward",
            call_type=FunctionCallType.INFERENCE,
            input_keys=("sample_seq",),
            output_keys=("sample_rewards",),
        ),
        ModelFunctionCall(
            name="greedy_reward_inference",
            model_name="reward",
            call_type=FunctionCallType.INFERENCE,
            input_keys=("greedy_seq",),
            output_keys=("greedy_rewards",),
        ),
        ModelFunctionCall(
            name="actor_train",
            model_name="actor",
            call_type=FunctionCallType.TRAIN_STEP,
            input_keys=("sample_seq", "sample_logp", "sample_rewards", "greedy_rewards"),
            output_keys=("actor_update",),
        ),
    ]
    return DataflowGraph(calls=calls, external_inputs=("prompts",), name="remax")
