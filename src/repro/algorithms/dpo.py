"""The DPO dataflow graph (Figure 16 of the paper).

Direct Preference Optimization needs no generation and no critic: a reference
model scores the preferred/rejected completion pairs, and the actor is trained
on the DPO loss.  The batch carries two sequences per preference pair, which
is expressed with ``batch_scale=2``.
"""

from __future__ import annotations

from ..core.dataflow import DataflowGraph, FunctionCallType, ModelFunctionCall

__all__ = ["build_dpo_graph"]


def build_dpo_graph() -> DataflowGraph:
    """Build the DPO dataflow graph: reference inference then actor training."""
    calls = [
        ModelFunctionCall(
            name="ref_inference",
            model_name="ref",
            call_type=FunctionCallType.INFERENCE,
            input_keys=("pairs",),
            output_keys=("ref_logp",),
            batch_scale=2.0,
        ),
        ModelFunctionCall(
            name="actor_train",
            model_name="actor",
            call_type=FunctionCallType.TRAIN_STEP,
            input_keys=("pairs", "ref_logp"),
            output_keys=("actor_update",),
            batch_scale=2.0,
        ),
    ]
    return DataflowGraph(calls=calls, external_inputs=("pairs",), name="dpo")
