"""The GRPO dataflow graph (Figure 16 of the paper).

Group Relative Policy Optimization removes the critic: the actor generates a
*group* of responses per prompt (the paper uses a group size of 8, making the
workload much more compute-bound), the reward model scores them, the reference
model provides KL regularisation, and group-normalised advantages train the
actor.
"""

from __future__ import annotations

from ..core.dataflow import DataflowGraph, FunctionCallType, ModelFunctionCall

__all__ = ["build_grpo_graph", "DEFAULT_GROUP_SIZE"]

DEFAULT_GROUP_SIZE = 8
"""Number of responses sampled per prompt (the paper's 8x batch increase)."""


def build_grpo_graph(group_size: int = DEFAULT_GROUP_SIZE) -> DataflowGraph:
    """Build the GRPO dataflow graph with ``group_size`` samples per prompt."""
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    scale = float(group_size)
    calls = [
        ModelFunctionCall(
            name="actor_generate",
            model_name="actor",
            call_type=FunctionCallType.GENERATE,
            input_keys=("prompts",),
            output_keys=("seq", "logp"),
            batch_scale=scale,
        ),
        ModelFunctionCall(
            name="reward_inference",
            model_name="reward",
            call_type=FunctionCallType.INFERENCE,
            input_keys=("seq",),
            output_keys=("rewards",),
            batch_scale=scale,
        ),
        ModelFunctionCall(
            name="ref_inference",
            model_name="ref",
            call_type=FunctionCallType.INFERENCE,
            input_keys=("seq",),
            output_keys=("ref_logp",),
            batch_scale=scale,
        ),
        ModelFunctionCall(
            name="actor_train",
            model_name="actor",
            call_type=FunctionCallType.TRAIN_STEP,
            input_keys=("seq", "logp", "rewards", "ref_logp"),
            output_keys=("actor_update",),
            batch_scale=scale,
        ),
    ]
    return DataflowGraph(calls=calls, external_inputs=("prompts",), name="grpo")
