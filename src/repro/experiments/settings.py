"""Experiment settings matching the paper's evaluation (Section 8, Appendix A).

The base configuration follows InstructGPT: a global batch of 512 prompts,
context length 2048 (1024 prompt + 1024 generation) and 8 PPO minibatches.
Weak-scaling experiments grow the model and the batch with the cluster;
long-context experiments keep the token budget constant while stretching the
context; strong-scaling experiments keep the problem fixed and vary the GPU
count.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from ..algorithms.registry import build_graph
from ..cluster.hardware import ClusterSpec, make_cluster
from ..core.dataflow import DataflowGraph
from ..core.workload import RLHFWorkload, instructgpt_workload

__all__ = [
    "ExperimentSetting",
    "BASE_BATCH_SIZE",
    "BASE_PROMPT_LEN",
    "BASE_GEN_LEN",
    "weak_scaling_settings",
    "figure8_settings",
    "strong_scaling_settings",
    "algorithm_settings",
    "gpus_for_actor",
]

BASE_BATCH_SIZE = 512
BASE_PROMPT_LEN = 1024
BASE_GEN_LEN = 1024
BASE_PPO_MINIBATCHES = 8

#: Weak-scaling association between actor size and cluster size (Appendix A):
#: 16, 32, 64, 128 GPUs host the 7B, 13B, 34B, 70B actors respectively.
ACTOR_TO_GPUS = {"7b": 16, "13b": 32, "34b": 64, "70b": 128}
#: Weak-scaling batch sizes for those cluster sizes.
GPUS_TO_BATCH = {8: 256, 16: 512, 32: 1024, 64: 2048, 96: 3072, 128: 4096}


def gpus_for_actor(actor_size: str) -> int:
    """The weak-scaling cluster size associated with an actor size."""
    return ACTOR_TO_GPUS[actor_size.lower()]


@dataclass(frozen=True)
class ExperimentSetting:
    """One point of an evaluation figure: sizes, cluster and data shape."""

    name: str
    actor_size: str
    critic_size: str
    n_gpus: int
    batch_size: int = BASE_BATCH_SIZE
    prompt_len: int = BASE_PROMPT_LEN
    gen_len: int = BASE_GEN_LEN
    n_ppo_minibatches: int = BASE_PPO_MINIBATCHES
    algorithm: str = "ppo"
    gpus_per_node: int = 8

    @property
    def context_len(self) -> int:
        """Total context length."""
        return self.prompt_len + self.gen_len

    def workload(self) -> RLHFWorkload:
        """Build the :class:`RLHFWorkload` of this setting."""
        return instructgpt_workload(
            actor_size=self.actor_size,
            critic_size=self.critic_size,
            batch_size=self.batch_size,
            prompt_len=self.prompt_len,
            gen_len=self.gen_len,
            n_ppo_minibatches=self.n_ppo_minibatches,
        )

    def cluster(self) -> ClusterSpec:
        """Build the :class:`ClusterSpec` of this setting."""
        return make_cluster(self.n_gpus, gpus_per_node=self.gpus_per_node)

    def graph(self) -> DataflowGraph:
        """Build the dataflow graph of this setting's RLHF algorithm."""
        return build_graph(self.algorithm)

    def with_context(self, context_len: int) -> "ExperimentSetting":
        """Scale to a longer context while keeping the token budget constant.

        The paper fixes the number of tokens per global batch, so quadrupling
        the context from 2048 to 8192 divides the batch size by four.
        """
        scale = context_len / self.context_len
        new_batch = max(self.n_ppo_minibatches, int(round(self.batch_size / scale)))
        return replace(
            self,
            name=f"{self.name}-ctx{context_len}",
            prompt_len=context_len // 2,
            gen_len=context_len // 2,
            batch_size=new_batch,
        )


def weak_scaling_settings(critic_size: str = "7b") -> List[ExperimentSetting]:
    """The Figure 7 weak-scaling sweep: actor and batch grow with the cluster."""
    settings = []
    for actor, n_gpus in ACTOR_TO_GPUS.items():
        if critic_size == "13b" and actor == "7b":
            continue  # the paper's 13B-critic panel starts at 32 GPUs
        settings.append(
            ExperimentSetting(
                name=f"{actor}+{critic_size}-{n_gpus}gpus",
                actor_size=actor,
                critic_size=critic_size,
                n_gpus=n_gpus,
                batch_size=GPUS_TO_BATCH[n_gpus],
            )
        )
    return settings


def figure8_settings(context_len: int = 2048) -> List[ExperimentSetting]:
    """The Figure 8 actor/critic size pairs, at context 2048 or 8192."""
    pairs: List[Tuple[str, str]] = [
        ("7b", "7b"),
        ("13b", "7b"),
        ("13b", "13b"),
        ("34b", "7b"),
        ("34b", "13b"),
        ("70b", "7b"),
        ("70b", "13b"),
    ]
    settings = []
    for actor, critic in pairs:
        n_gpus = gpus_for_actor(actor)
        base = ExperimentSetting(
            name=f"{actor}+{critic}",
            actor_size=actor,
            critic_size=critic,
            n_gpus=n_gpus,
            batch_size=GPUS_TO_BATCH[n_gpus],
        )
        settings.append(base if context_len == base.context_len else base.with_context(context_len))
    return settings


def strong_scaling_settings(
    actor_size: str = "7b",
    critic_size: str = "7b",
    gpu_counts: Tuple[int, ...] = (8, 16, 32, 64, 96, 128),
) -> List[ExperimentSetting]:
    """The Figure 17 strong-scaling sweep: fixed problem, growing cluster."""
    return [
        ExperimentSetting(
            name=f"{actor_size}+{critic_size}-{n}gpus",
            actor_size=actor_size,
            critic_size=critic_size,
            n_gpus=n,
            batch_size=BASE_BATCH_SIZE,
        )
        for n in gpu_counts
    ]


def algorithm_settings(
    algorithms: Tuple[str, ...] = ("dpo", "grpo", "remax"),
    actor_size: str = "70b",
    critic_size: str = "7b",
    n_gpus: int = 128,
) -> List[ExperimentSetting]:
    """The Figure 16 settings: RLHF algorithms beyond PPO on 16 nodes."""
    return [
        ExperimentSetting(
            name=f"{algorithm}-{actor_size}+{critic_size}",
            actor_size=actor_size,
            critic_size=critic_size,
            n_gpus=n_gpus,
            batch_size=GPUS_TO_BATCH[n_gpus],
            algorithm=algorithm,
        )
        for algorithm in algorithms
    ]
