"""Experiment harness: settings, metrics, runners and ablations for every figure."""

from .ablation import OptimizationLevel, figure2_opportunity, progressive_optimization
from .metrics import (
    ThroughputRecord,
    petaflops_per_second,
    speedup,
    static_memory_utilization,
)
from .reporting import format_breakdown, format_series, format_table
from .runner import (
    default_search_config,
    default_systems,
    evaluate_setting,
    run_comparison,
    run_heuristic_comparison,
    run_scheduler_comparison,
)
from .settings import (
    ExperimentSetting,
    algorithm_settings,
    figure8_settings,
    gpus_for_actor,
    strong_scaling_settings,
    weak_scaling_settings,
)

__all__ = [
    "ExperimentSetting",
    "weak_scaling_settings",
    "figure8_settings",
    "strong_scaling_settings",
    "algorithm_settings",
    "gpus_for_actor",
    "petaflops_per_second",
    "speedup",
    "static_memory_utilization",
    "ThroughputRecord",
    "format_table",
    "format_series",
    "format_breakdown",
    "default_systems",
    "default_search_config",
    "evaluate_setting",
    "run_comparison",
    "run_heuristic_comparison",
    "run_scheduler_comparison",
    "OptimizationLevel",
    "progressive_optimization",
    "figure2_opportunity",
]
