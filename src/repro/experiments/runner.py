"""Experiment runner: evaluate systems on settings and collect records.

The benchmark files under ``benchmarks/`` are thin wrappers around this
module: each figure/table of the paper maps to one runner function that
returns the rows/series the paper reports.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..baselines import (
    DeepSpeedChatSystem,
    NeMoAlignerSystem,
    OpenRLHFSystem,
    RealHeuristicSystem,
    RealSystem,
    VeRLSystem,
)
from ..baselines.base import BaselineSystem, SystemEvaluation
from ..core.estimator import RuntimeEstimator
from ..core.search import SearchConfig
from ..service.server import PlanService
from .metrics import ThroughputRecord, static_memory_utilization
from .settings import ExperimentSetting

__all__ = [
    "default_search_config",
    "default_systems",
    "evaluate_setting",
    "run_comparison",
    "run_heuristic_comparison",
    "run_scheduler_comparison",
]

#: Environment variable scaling the MCMC search budget in benchmarks (1.0 = default).
SEARCH_BUDGET_ENV = "REPRO_SEARCH_BUDGET_SCALE"


def _budget_scale() -> float:
    """Parse ``REPRO_SEARCH_BUDGET_SCALE`` into a positive finite factor.

    A malformed value silently falling back to 1.0 would make an expensive
    high-fidelity run silently cheap (or a typo'd ``-1`` produce negative
    budgets), so invalid values are rejected loudly.
    """
    raw = os.environ.get(SEARCH_BUDGET_ENV)
    if raw is None or not raw.strip():
        return 1.0
    try:
        scale = float(raw)
    except ValueError:
        raise ValueError(
            f"{SEARCH_BUDGET_ENV} must be a number, got {raw!r}"
        ) from None
    if not math.isfinite(scale) or scale <= 0:
        raise ValueError(
            f"{SEARCH_BUDGET_ENV} must be a positive finite number, got {raw!r}"
        )
    return scale


def default_search_config(seed: int = 0) -> SearchConfig:
    """Search budget used by the benchmark harness.

    Benchmarks must finish in CI-friendly time, so the default budget is a few
    thousand proposals; set ``REPRO_SEARCH_BUDGET_SCALE`` to enlarge it for
    higher-fidelity runs.
    """
    scale = _budget_scale()
    return SearchConfig(
        max_iterations=int(3000 * scale),
        time_budget_s=30.0 * scale,
        seed=seed,
    )


def default_systems(include_real: bool = True, seed: int = 0) -> List[BaselineSystem]:
    """The Figure 7 comparison set (plus ReaL itself unless disabled)."""
    systems: List[BaselineSystem] = [
        DeepSpeedChatSystem(),
        OpenRLHFSystem(),
        NeMoAlignerSystem(),
        VeRLSystem(),
        RealHeuristicSystem(),
    ]
    if include_real:
        systems.append(RealSystem(search_config=default_search_config(seed)))
    return systems


def evaluate_setting(
    setting: ExperimentSetting,
    system: BaselineSystem,
    n_iterations: int = 1,
) -> ThroughputRecord:
    """Evaluate one system on one setting and return a throughput record."""
    graph = setting.graph()
    workload = setting.workload()
    cluster = setting.cluster()
    evaluation = system.evaluate(graph, workload, cluster, n_iterations=n_iterations)
    extra: Dict[str, float] = {}
    if evaluation.feasible and evaluation.plan is not None:
        estimator = RuntimeEstimator(graph, workload, cluster)
        memory = estimator.max_memory(evaluation.plan)
        extra["static_mem_util"] = static_memory_utilization(
            memory, cluster.device_memory_bytes
        )
    return ThroughputRecord(
        setting=setting.name,
        system=evaluation.system,
        feasible=evaluation.feasible,
        seconds_per_iteration=evaluation.seconds_per_iteration,
        petaflops=evaluation.petaflops,
        extra=extra or None,
    )


def run_comparison(
    settings: Sequence[ExperimentSetting],
    systems: Optional[Sequence[BaselineSystem]] = None,
    plan_service: Optional[PlanService] = None,
) -> List[ThroughputRecord]:
    """Evaluate every system on every setting (the Figure 7 grid).

    When ``plan_service`` is given, every searching system (ReaL) routes its
    plan searches through the shared service for the duration of the grid,
    so the whole grid reuses one plan cache: repeated settings are cache
    hits and related settings warm-start each other instead of cold-starting
    the MCMC chain per cell.  Each system's own ``plan_service`` attribute
    is restored afterwards, so callers keep control of their systems'
    routing outside this comparison.
    """
    systems = list(systems) if systems is not None else default_systems()
    routed = [system for system in systems if hasattr(system, "plan_service")]
    previous = {id(system): system.plan_service for system in routed}
    if plan_service is not None:
        for system in routed:
            system.plan_service = plan_service
    try:
        records: List[ThroughputRecord] = []
        for setting in settings:
            for system in systems:
                records.append(evaluate_setting(setting, system))
        return records
    finally:
        if plan_service is not None:
            for system in routed:
                system.plan_service = previous[id(system)]


def run_heuristic_comparison(
    settings: Sequence[ExperimentSetting],
    seed: int = 0,
    plan_service: Optional[PlanService] = None,
) -> List[ThroughputRecord]:
    """ReaL vs ReaL-Heuristic only (Figures 8 and 16)."""
    systems: List[BaselineSystem] = [
        RealHeuristicSystem(),
        RealSystem(search_config=default_search_config(seed)),
    ]
    return run_comparison(settings, systems, plan_service=plan_service)


def run_scheduler_comparison(
    cluster,
    jobs,
    policies: Sequence[object] = ("first_fit", "best_throughput", "priority"),
    config=None,
    plan_service: Optional[PlanService] = None,
    failures: Sequence[object] = (),
    trace_dir: Optional[str] = None,
):
    """Run one job trace under several scheduling policies.

    ``policies`` mixes policy names and instances (e.g. a configured
    :class:`~repro.sched.policies.StaticEqualPolicy` baseline).  When
    ``plan_service`` is given all runs share one plan cache, so policies
    after the first mostly re-score cached (job, shape) candidates — the
    comparison then measures scheduling quality, not repeated search cost.
    ``trace_dir`` exports one merged Chrome trace per policy
    (``schedule_<policy>.json`` — cluster events plus every job's
    engine-profiled iteration phases).  Returns one
    :class:`~repro.sched.metrics.ScheduleReport` per policy, in order.
    """
    from ..sched.policies import get_policy  # local import avoids a cycle
    from ..sched.scheduler import schedule_trace

    reports = []
    for policy in policies:
        trace_path = None
        if trace_dir is not None:
            trace_path = os.path.join(
                trace_dir, f"schedule_{get_policy(policy).name}.json"
            )
        reports.append(
            schedule_trace(
                cluster=cluster,
                jobs=jobs,
                policy=policy,
                config=config,
                service=plan_service,
                failures=failures,
                trace_path=trace_path,
            )
        )
    return reports
