"""Progressive-optimization ablations (Figure 2 and Figure 9 of the paper).

Both figures apply ReaL's optimizations one at a time on top of the symmetric
3D-parallel heuristic and measure how much each contributes:

* Figure 9: CUDA-graph generation, then optimized generation parallelization,
  then training parallelization & concurrent execution, then inference
  parallelization & concurrent execution.
* Figure 2: optimized inference, then critic reallocation, then actor
  reallocation.

We implement this with *constrained searches*: the MCMC searcher is only
allowed to modify the allocations of the calls unlocked at each level, while
all other calls stay pinned to the heuristic plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..baselines.heuristic import build_heuristic_plan
from ..cluster.hardware import ClusterSpec
from ..core.dataflow import DataflowGraph, FunctionCallType
from ..core.plan import ExecutionPlan
from ..core.pruning import PruneConfig, allocation_options
from ..core.search import MCMCSearcher, SearchConfig
from ..core.workload import RLHFWorkload
from ..runtime.engine import RuntimeEngine

__all__ = ["OptimizationLevel", "progressive_optimization", "figure2_opportunity"]


@dataclass
class OptimizationLevel:
    """One bar of the progressive-optimization figures."""

    name: str
    plan: ExecutionPlan
    use_cuda_graph: bool
    seconds_per_iteration: float
    call_seconds: Dict[str, float]


def _constrained_search(
    graph: DataflowGraph,
    workload: RLHFWorkload,
    cluster: ClusterSpec,
    base_plan: ExecutionPlan,
    free_calls: Sequence[str],
    search_config: SearchConfig,
    prune: PruneConfig = PruneConfig(),
) -> ExecutionPlan:
    """Search over plans where only ``free_calls`` may deviate from ``base_plan``."""
    options = allocation_options(graph, workload, cluster, prune)
    for call_name in graph.call_names:
        if call_name not in free_calls:
            options[call_name] = [base_plan[call_name]]
    searcher = MCMCSearcher(
        graph=graph,
        workload=workload,
        cluster=cluster,
        options=options,
        config=search_config,
        seed_plans=[base_plan],
    )
    return searcher.search().best_plan


def _measure(
    graph: DataflowGraph,
    workload: RLHFWorkload,
    cluster: ClusterSpec,
    plan: ExecutionPlan,
    name: str,
    use_cuda_graph: bool,
) -> OptimizationLevel:
    engine = RuntimeEngine(cluster, workload, use_cuda_graph=use_cuda_graph)
    trace = engine.run_iteration(graph, plan)
    return OptimizationLevel(
        name=name,
        plan=plan,
        use_cuda_graph=use_cuda_graph,
        seconds_per_iteration=trace.total_seconds,
        call_seconds=trace.call_seconds(),
    )


def progressive_optimization(
    graph: DataflowGraph,
    workload: RLHFWorkload,
    cluster: ClusterSpec,
    search_config: Optional[SearchConfig] = None,
    prune: PruneConfig = PruneConfig(),
) -> List[OptimizationLevel]:
    """The Figure 9 ladder, from the heuristic to the full ReaL plan.

    Levels: heuristic without CUDA graphs, heuristic with CUDA graphs,
    optimized generation, optimized generation+training (concurrent), and
    optimized generation+training+inference (the full search space).
    """
    search_config = search_config or SearchConfig(max_iterations=1500, time_budget_s=15.0)
    heuristic = build_heuristic_plan(graph, workload, cluster)

    generation_calls = [
        c.name for c in graph.calls if c.call_type is FunctionCallType.GENERATE
    ]
    training_calls = [
        c.name for c in graph.calls if c.call_type is FunctionCallType.TRAIN_STEP
    ]
    inference_calls = [
        c.name for c in graph.calls if c.call_type is FunctionCallType.INFERENCE
    ]

    levels = [
        _measure(graph, workload, cluster, heuristic, "heuristic (no CUDAGraph)", False),
        _measure(graph, workload, cluster, heuristic, "+ CUDAGraph generation", True),
    ]
    plan_gen = _constrained_search(
        graph, workload, cluster, heuristic, generation_calls, search_config, prune
    )
    levels.append(_measure(graph, workload, cluster, plan_gen, "+ generation parallelization", True))
    plan_train = _constrained_search(
        graph, workload, cluster, plan_gen, generation_calls + training_calls, search_config, prune
    )
    levels.append(
        _measure(graph, workload, cluster, plan_train, "+ training parallelization & concurrency", True)
    )
    plan_full = _constrained_search(
        graph,
        workload,
        cluster,
        plan_train,
        generation_calls + training_calls + inference_calls,
        search_config,
        prune,
    )
    levels.append(
        _measure(graph, workload, cluster, plan_full, "+ inference parallelization & concurrency", True)
    )
    return levels


def figure2_opportunity(
    graph: DataflowGraph,
    workload: RLHFWorkload,
    cluster: ClusterSpec,
    search_config: Optional[SearchConfig] = None,
    prune: PruneConfig = PruneConfig(),
) -> List[OptimizationLevel]:
    """The Figure 2 ladder: +Opt.Inf, +Critic reallocation, +Actor reallocation."""
    search_config = search_config or SearchConfig(max_iterations=1500, time_budget_s=15.0)
    heuristic = build_heuristic_plan(graph, workload, cluster)

    inference_calls = [
        c.name for c in graph.calls if c.call_type is FunctionCallType.INFERENCE
    ]
    critic_calls = [c.name for c in graph.calls if c.model_name == "critic"]
    actor_calls = [c.name for c in graph.calls if c.model_name == "actor"]

    levels = [_measure(graph, workload, cluster, heuristic, "3D parallelism (heuristic)", True)]
    plan_inf = _constrained_search(
        graph, workload, cluster, heuristic, inference_calls, search_config, prune
    )
    levels.append(_measure(graph, workload, cluster, plan_inf, "+ Opt. Inf.", True))
    plan_critic = _constrained_search(
        graph, workload, cluster, plan_inf, inference_calls + critic_calls, search_config, prune
    )
    levels.append(_measure(graph, workload, cluster, plan_critic, "+ Critic Realloc.", True))
    plan_actor = _constrained_search(
        graph,
        workload,
        cluster,
        plan_critic,
        inference_calls + critic_calls + actor_calls,
        search_config,
        prune,
    )
    levels.append(_measure(graph, workload, cluster, plan_actor, "+ Actor Realloc.", True))
    return levels
