"""Throughput and utilisation metrics used by the evaluation figures."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.dataflow import DataflowGraph
from ..core.estimator import MemoryEstimate
from ..core.workload import RLHFWorkload

__all__ = ["petaflops_per_second", "speedup", "static_memory_utilization", "ThroughputRecord"]


def petaflops_per_second(
    workload: RLHFWorkload, graph: DataflowGraph, seconds_per_iteration: float
) -> float:
    """The paper's throughput metric: total iteration FLOPs over wall time."""
    if seconds_per_iteration <= 0:
        raise ValueError("seconds_per_iteration must be positive")
    return workload.iteration_flops(graph.calls) / seconds_per_iteration / 1e15


def speedup(baseline_seconds: float, improved_seconds: float) -> float:
    """How many times faster the improved configuration is."""
    if improved_seconds <= 0:
        raise ValueError("improved_seconds must be positive")
    return baseline_seconds / improved_seconds


def static_memory_utilization(memory: MemoryEstimate, device_memory_bytes: float) -> float:
    """Fraction of device memory occupied by static (gradient/optimizer) state.

    The paper recommends this as the heuristic for picking the cluster size:
    utilisation below ~60% signals diminishing returns from more GPUs
    (Figure 17, right).
    """
    if device_memory_bytes <= 0:
        raise ValueError("device_memory_bytes must be positive")
    if not memory.static_per_gpu:
        return 0.0
    mean_static = sum(memory.static_per_gpu.values()) / len(memory.static_per_gpu)
    return mean_static / device_memory_bytes


@dataclass
class ThroughputRecord:
    """One measured point of a throughput figure."""

    setting: str
    system: str
    feasible: bool
    seconds_per_iteration: float
    petaflops: float
    extra: Dict[str, float] | None = None

    def as_row(self) -> Dict[str, object]:
        """Flatten into a printable dict."""
        row: Dict[str, object] = {
            "setting": self.setting,
            "system": self.system,
            "feasible": self.feasible,
            "s/iter": round(self.seconds_per_iteration, 2) if self.feasible else "OOM",
            "PFLOP/s": round(self.petaflops, 2) if self.feasible else 0.0,
        }
        if self.extra:
            row.update({k: round(v, 4) for k, v in self.extra.items()})
        return row
