"""Plain-text table/series formatting for the benchmark harness output."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

__all__ = ["format_table", "format_series", "format_breakdown"]


def format_table(rows: Sequence[Mapping[str, object]], title: str = "") -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {col: len(col) for col in columns}
    for row in rows:
        for col in columns:
            widths[col] = max(widths[col], len(str(row.get(col, ""))))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(str(row.get(col, "")).ljust(widths[col]) for col in columns))
    return "\n".join(lines)


def format_series(series: Mapping[str, Sequence[float]], x_label: str, title: str = "") -> str:
    """Render named series (figure curves) as a compact table."""
    rows = []
    names = list(series)
    length = max(len(v) for v in series.values())
    for index in range(length):
        row: Dict[str, object] = {x_label: index}
        for name in names:
            values = series[name]
            row[name] = round(values[index], 4) if index < len(values) else ""
        rows.append(row)
    return format_table(rows, title=title)


def format_breakdown(breakdown: Mapping[str, float], title: str = "") -> str:
    """Render a cost/time breakdown (seconds or fractions) as aligned lines."""
    lines = [title] if title else []
    width = max((len(k) for k in breakdown), default=0)
    for key, value in breakdown.items():
        lines.append(f"  {key.ljust(width)}  {value:10.4f}")
    return "\n".join(lines)
