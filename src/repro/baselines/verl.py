"""veRL (HybridFlow) baseline: colocated models with per-call resharding.

veRL (Sheng et al., 2024) is concurrent work that colocates all models on the
full cluster (or supports split placement) and reshards parameters between a
generation backend (vLLM/SGLang) and a training backend (Megatron/FSDP).  We
model its strongest configuration: every call runs on the entire cluster, the
generation call uses the serving-style layout (TP within a node, DP across),
and training/inference calls use the Megatron heuristic layout.  Compared with
ReaL, veRL cannot run independent calls concurrently on smaller meshes nor
tailor mesh sizes per call, which is exactly the gap the paper measures.
"""

from __future__ import annotations

from typing import Dict

from ..cluster.hardware import ClusterSpec
from ..cluster.topology import full_cluster_mesh
from ..core.dataflow import DataflowGraph, FunctionCallType
from ..core.estimator import RuntimeEstimator
from ..core.parallel import ParallelStrategy
from ..core.plan import Allocation, ExecutionPlan
from ..core.workload import RLHFWorkload
from .base import (
    MEMORY_FRACTION_SCHEDULE,
    BaselineSystem,
    InfeasiblePlanError,
    megatron_heuristic_allocation,
    pick_microbatches,
)

__all__ = ["VeRLSystem"]


class VeRLSystem(BaselineSystem):
    """Strategy model of veRL/HybridFlow v0.2.0 (vLLM + FSDP/Megatron)."""

    name = "veRL"

    def _serving_allocation(
        self, config, workload: RLHFWorkload, mesh, cluster: ClusterSpec, batch_size: int
    ) -> Allocation:
        """vLLM-style layout: TP within a node, engine replicas across nodes."""
        tp = min(cluster.gpus_per_node, mesh.n_gpus)
        while config.n_heads % tp != 0 and tp > 1:
            tp //= 2
        strategy = ParallelStrategy(dp=mesh.n_gpus // tp, tp=tp, pp=1)
        mbs = pick_microbatches(
            config, FunctionCallType.GENERATE, workload, strategy, cluster, batch_size=batch_size
        )
        return Allocation(mesh=mesh, parallel=strategy, n_microbatches=mbs)

    def build_plan(
        self, graph: DataflowGraph, workload: RLHFWorkload, cluster: ClusterSpec
    ) -> ExecutionPlan:
        mesh = full_cluster_mesh(cluster)
        last_error = None
        for fraction in MEMORY_FRACTION_SCHEDULE:
            try:
                assignments: Dict[str, Allocation] = {}
                for call in graph.calls:
                    config = workload.model_config(call.model_name)
                    wl = workload.call_workload(call)
                    if call.call_type is FunctionCallType.GENERATE:
                        assignments[call.name] = self._serving_allocation(
                            config, workload, mesh, cluster, wl.batch_size
                        )
                    else:
                        assignments[call.name] = megatron_heuristic_allocation(
                            config, call.call_type, workload, mesh, cluster,
                            batch_size=wl.batch_size, memory_fraction=fraction,
                        )
                plan = ExecutionPlan(assignments, name="verl")
            except InfeasiblePlanError as exc:
                last_error = exc
                continue
            if RuntimeEstimator(graph, workload, cluster).is_feasible(plan):
                return plan
        raise InfeasiblePlanError(
            str(last_error) if last_error else "no veRL placement fits in device memory"
        )
