"""REAL-Heuristic: the pre-training-inspired symmetric 3D parallel baseline.

Section 8.1: "a pre-training-inspired approach that implements a symmetric 3D
parallelization across all models.  This strategy combines the intra-node TP
with the inter-node PP and DP, maximizing the DP degree within memory
constraints."  Every model function call runs on the full cluster with the
same strategy (chosen per model architecture); nothing runs concurrently and
no parameters are reallocated.
"""

from __future__ import annotations

from typing import Dict

from ..cluster.hardware import ClusterSpec
from ..cluster.topology import full_cluster_mesh
from ..core.dataflow import DataflowGraph
from ..core.plan import ExecutionPlan
from ..core.workload import RLHFWorkload
from .base import BaselineSystem, build_symmetric_plan_with_budget

__all__ = ["RealHeuristicSystem", "build_heuristic_plan"]


def build_heuristic_plan(
    graph: DataflowGraph, workload: RLHFWorkload, cluster: ClusterSpec
) -> ExecutionPlan:
    """Build the symmetric Megatron-style plan for any dataflow graph.

    Every call runs on the full cluster; the per-model memory budget shrinks
    (pushing DP down and TP/PP up) until the combined plan fits in device
    memory, mirroring how a practitioner tunes the pre-training recipe for
    RLHF's four co-located models.
    """
    mesh = full_cluster_mesh(cluster)
    return build_symmetric_plan_with_budget(
        graph, workload, cluster, mesh_of_call=lambda call: mesh, plan_name="real-heuristic"
    )


class RealHeuristicSystem(BaselineSystem):
    """The ReaL-Heuristic baseline of Figures 8, 9, 11 and 16."""

    name = "ReaL-Heuristic"

    def build_plan(
        self, graph: DataflowGraph, workload: RLHFWorkload, cluster: ClusterSpec
    ) -> ExecutionPlan:
        return build_heuristic_plan(graph, workload, cluster)
