"""DeepSpeed-Chat baseline: symmetric ZeRO-3 data parallelism + HybridEngine.

DeepSpeed-Chat (Yao et al., 2023) executes the model function calls
sequentially, using ZeRO-3 data parallelism across all GPUs for training and
inference of every model.  Its Hybrid Engine temporarily reshards the ZeRO-3
partitions into tensor parallelism for the generation task and reverts
afterwards; beyond this mechanism it supports neither TP nor PP, and the
generation path cannot micro-batch the decoding KV cache, which is why it runs
out of memory for the larger actors in the paper's Figure 7.
"""

from __future__ import annotations

from typing import Dict

from ..cluster.hardware import ClusterSpec
from ..cluster.topology import full_cluster_mesh
from ..core.dataflow import DataflowGraph, FunctionCallType
from ..core.parallel import ParallelStrategy
from ..core.plan import Allocation, ExecutionPlan
from ..core.workload import RLHFWorkload
from .base import BaselineSystem, InfeasiblePlanError, pick_microbatches

__all__ = ["DeepSpeedChatSystem"]


class DeepSpeedChatSystem(BaselineSystem):
    """Strategy model of DeepSpeed-Chat (commit f73a6ed, DeepSpeed v0.15.1)."""

    name = "DeepSpeedChat"

    #: Fraction of the optimised decode bandwidth DeepSpeed-Chat's HF-style
    #: generation loop achieves (no paged attention, no fused decode kernels).
    GENERATION_EFFICIENCY = 0.35

    def uses_cuda_graph(self) -> bool:
        # DeepSpeed-Chat's generation loop does not capture CUDA graphs.
        return False

    def adjust_cluster(self, cluster: ClusterSpec) -> ClusterSpec:
        import dataclasses

        derated_gpu = dataclasses.replace(
            cluster.gpu,
            decode_efficiency=cluster.gpu.decode_efficiency * self.GENERATION_EFFICIENCY,
        )
        return dataclasses.replace(cluster, gpu=derated_gpu)

    def build_plan(
        self, graph: DataflowGraph, workload: RLHFWorkload, cluster: ClusterSpec
    ) -> ExecutionPlan:
        mesh = full_cluster_mesh(cluster)
        n = mesh.n_gpus
        assignments: Dict[str, Allocation] = {}
        for call in graph.calls:
            config = workload.model_config(call.model_name)
            wl = workload.call_workload(call)
            if call.call_type is FunctionCallType.GENERATE:
                # HybridEngine: reshard to TP within the node for generation;
                # the whole batch is decoded at once (no KV micro-batching).
                tp = min(cluster.gpus_per_node, n)
                while config.n_heads % tp != 0 and tp > 1:
                    tp //= 2
                strategy = ParallelStrategy(dp=n // tp, tp=tp, pp=1)
                assignments[call.name] = Allocation(
                    mesh=mesh, parallel=strategy, n_microbatches=1
                )
            else:
                # ZeRO-3 pure data parallelism for training and inference.
                strategy = ParallelStrategy(dp=n, tp=1, pp=1)
                if strategy.dp > wl.batch_size:
                    raise InfeasiblePlanError(
                        f"ZeRO-3 DP degree {n} exceeds the batch size {wl.batch_size}"
                    )
                mbs = pick_microbatches(
                    config, call.call_type, workload, strategy, cluster,
                    batch_size=wl.batch_size, zero3=True,
                )
                assignments[call.name] = Allocation(
                    mesh=mesh, parallel=strategy, n_microbatches=mbs, zero3=True
                )
        return ExecutionPlan(assignments, name="deepspeed-chat")
