"""ReaL itself, wrapped as a comparable system: MCMC-searched execution plans.

This adapter lets the benchmark harness evaluate ReaL with exactly the same
interface as the baselines: ``build_plan`` runs the execution plan generator
(profiling-assisted estimator + Metropolis-Hastings search) and returns the
best plan found within the configured budget.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..cluster.hardware import ClusterSpec
from ..core.dataflow import DataflowGraph
from ..core.plan import ExecutionPlan
from ..core.pruning import PruneConfig
from ..core.search import MCMCSearcher, SearchConfig, SearchResult
from ..core.workload import RLHFWorkload
from .base import BaselineSystem

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance
    from ..service.server import PlanService

__all__ = ["RealSystem"]


@dataclass
class RealSystem(BaselineSystem):
    """ReaL: parameter reallocation with an MCMC-searched execution plan.

    When ``plan_service`` is set, plan searches are routed through the
    planning service: repeated evaluations of the same setting become cache
    hits, and new settings of the same model family are warm-started from
    previously searched plans.  The Megatron heuristic seed is passed along
    through the search config's ``initial_plan`` hook so the service path
    starts from the same candidates as the direct path.
    """

    search_config: SearchConfig = field(default_factory=SearchConfig)
    prune_config: PruneConfig = field(default_factory=PruneConfig)
    name: str = "ReaL"
    last_result: Optional[SearchResult] = None
    plan_service: Optional["PlanService"] = None

    def build_plan(
        self, graph: DataflowGraph, workload: RLHFWorkload, cluster: ClusterSpec
    ) -> ExecutionPlan:
        from .heuristic import build_heuristic_plan  # local import avoids a cycle
        from .base import InfeasiblePlanError

        seed_plans = []
        try:
            seed_plans.append(build_heuristic_plan(graph, workload, cluster))
        except InfeasiblePlanError:
            pass  # the search simply starts from the greedy plan
        if self.plan_service is not None:
            from ..service.server import PlanRequest  # local import avoids a cycle

            search = self.search_config
            if seed_plans:
                search = dataclasses.replace(search, initial_plan=seed_plans[0])
            response = self.plan_service.plan(
                PlanRequest(
                    graph=graph,
                    workload=workload,
                    cluster=cluster,
                    search=search,
                    prune=self.prune_config,
                )
            )
            self.last_result = response.result
            return response.plan
        searcher = MCMCSearcher(
            graph=graph,
            workload=workload,
            cluster=cluster,
            prune=self.prune_config,
            config=self.search_config,
            seed_plans=seed_plans,
        )
        self.last_result = searcher.search()
        return self.last_result.best_plan
