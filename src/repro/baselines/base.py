"""Shared infrastructure for the baseline RLHF systems.

The paper compares ReaL against four open-source systems (DeepSpeed-Chat,
OpenRLHF, NeMo-Aligner, veRL/HybridFlow) plus a Megatron-inspired heuristic.
Each baseline is reproduced as a *strategy model*: a deterministic procedure
that turns (dataflow graph, workload, cluster) into an execution plan
reflecting that system's placement and parallelization policy.  All plans are
then evaluated on the same simulated cluster by the same runtime engine, so
the comparison isolates exactly what the paper isolates — the execution plan.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster.hardware import ClusterSpec
from ..cluster.topology import DeviceMesh, full_cluster_mesh
from ..core.dataflow import DataflowGraph, FunctionCallType
from ..core.estimator import RuntimeEstimator
from ..core.parallel import ParallelStrategy, enumerate_strategies
from ..core.plan import Allocation, ExecutionPlan
from ..core.workload import RLHFWorkload
from ..model.config import ModelConfig
from ..model.memory import MemoryModel
from ..runtime.engine import RuntimeEngine, ThroughputResult

__all__ = [
    "InfeasiblePlanError",
    "SystemEvaluation",
    "BaselineSystem",
    "megatron_heuristic_allocation",
    "split_cluster_into_groups",
    "pick_microbatches",
]

MICROBATCH_CHOICES = (1, 2, 4, 8, 16, 32, 64)


class InfeasiblePlanError(RuntimeError):
    """Raised when a system cannot run the workload (the paper's red crosses)."""


@dataclass
class SystemEvaluation:
    """Throughput of one system on one experiment setting."""

    system: str
    feasible: bool
    throughput: Optional[ThroughputResult] = None
    plan: Optional[ExecutionPlan] = None
    failure_reason: str = ""

    @property
    def petaflops(self) -> float:
        """PFLOP/s, or 0.0 when the system could not run the workload."""
        if self.throughput is None:
            return 0.0
        return self.throughput.petaflops_per_second

    @property
    def seconds_per_iteration(self) -> float:
        """Iteration wall time, or ``inf`` when infeasible."""
        if self.throughput is None:
            return float("inf")
        return self.throughput.seconds_per_iteration


class BaselineSystem(ABC):
    """A system under comparison: builds an execution plan for a workload."""

    name: str = "baseline"

    @abstractmethod
    def build_plan(
        self, graph: DataflowGraph, workload: RLHFWorkload, cluster: ClusterSpec
    ) -> ExecutionPlan:
        """Produce this system's execution plan (may raise InfeasiblePlanError)."""

    def uses_cuda_graph(self) -> bool:
        """Whether the system captures decoding kernels into CUDA graphs."""
        return True

    def adjust_cluster(self, cluster: ClusterSpec) -> ClusterSpec:
        """Hook for backend-specific hardware efficiency adjustments.

        Systems whose generation backend lacks the optimised decoding path
        (paged attention, fused kernels) override this to de-rate the
        achievable decode bandwidth, so the shared engine reflects their real
        generation throughput.
        """
        return cluster

    def evaluate(
        self,
        graph: DataflowGraph,
        workload: RLHFWorkload,
        cluster: ClusterSpec,
        n_iterations: int = 1,
    ) -> SystemEvaluation:
        """Build the plan and measure its throughput on the simulated cluster.

        Plans whose peak memory exceeds the device capacity are reported as
        infeasible rather than raising, matching how the paper reports OOM
        failures of the baselines.
        """
        try:
            plan = self.build_plan(graph, workload, cluster)
        except InfeasiblePlanError as exc:
            return SystemEvaluation(system=self.name, feasible=False, failure_reason=str(exc))
        run_cluster = self.adjust_cluster(cluster)
        estimator = RuntimeEstimator(
            graph, workload, run_cluster, use_cuda_graph=self.uses_cuda_graph()
        )
        if not estimator.is_feasible(plan):
            mem = estimator.max_memory(plan).max_bytes / 1e9
            return SystemEvaluation(
                system=self.name,
                feasible=False,
                plan=plan,
                failure_reason=f"peak memory {mem:.0f} GB exceeds device capacity",
            )
        engine = RuntimeEngine(run_cluster, workload, use_cuda_graph=self.uses_cuda_graph())
        throughput = engine.measure_throughput(graph, plan, n_iterations=n_iterations)
        return SystemEvaluation(
            system=self.name, feasible=True, throughput=throughput, plan=plan
        )


# ---------------------------------------------------------------------- #
# Shared plan-building helpers
# ---------------------------------------------------------------------- #
DEFAULT_CALL_MEMORY_FRACTION = 0.35
"""Default share of device memory a single call may occupy.

RLHF co-locates up to four LLMs (parameters, two sets of optimizer states and
the active call's working set) on the same devices, so individual calls are
budgeted conservatively when choosing their micro-batch count.
"""


def pick_microbatches(
    config: ModelConfig,
    call_type: FunctionCallType,
    workload: RLHFWorkload,
    strategy: ParallelStrategy,
    cluster: ClusterSpec,
    batch_size: Optional[int] = None,
    zero3: bool = False,
    memory_fraction: float = DEFAULT_CALL_MEMORY_FRACTION,
) -> int:
    """Smallest micro-batch count that fits the call within its memory budget.

    Mirrors the common practice of increasing the number of micro-batches
    until activations, logits and KV cache fit; returns the largest choice if
    nothing fits (the plan will then be flagged infeasible by the evaluator).
    """
    memory = MemoryModel(config)
    batch = batch_size if batch_size is not None else workload.batch_size
    b_dp = max(1, -(-batch // strategy.dp))
    seqlen = workload.context_len
    budget = memory_fraction * cluster.device_memory_bytes
    for mbs in MICROBATCH_CHOICES:
        if mbs > b_dp:
            break
        if call_type is FunctionCallType.GENERATE:
            breakdown = memory.generation_breakdown(
                b_dp, workload.prompt_len, workload.gen_len,
                strategy.dp, strategy.tp, strategy.pp, mbs, zero3,
            )
        elif call_type is FunctionCallType.INFERENCE:
            breakdown = memory.inference_breakdown(
                b_dp, seqlen, strategy.dp, strategy.tp, strategy.pp, mbs, zero3
            )
        else:
            b_mini = max(1, -(-batch // workload.n_ppo_minibatches // strategy.dp))
            breakdown = memory.training_breakdown(
                b_mini, seqlen, strategy.dp, strategy.tp, strategy.pp, mbs, zero3
            )
        if breakdown.total < budget:
            return mbs
    return MICROBATCH_CHOICES[-1]


def megatron_heuristic_allocation(
    config: ModelConfig,
    call_type: FunctionCallType,
    workload: RLHFWorkload,
    mesh: DeviceMesh,
    cluster: ClusterSpec,
    batch_size: Optional[int] = None,
    memory_fraction: float = 0.6,
) -> Allocation:
    """The pre-training-inspired symmetric 3D strategy of Section 8.1.

    Tensor parallelism stays within a node, pipeline parallelism spans nodes,
    and the data-parallel degree is maximised within memory constraints.
    ``memory_fraction`` is the share of device memory this one model is
    allowed to use; builders co-locating several models pass a smaller value
    (and retry with even smaller ones) so that the combined plan fits.
    """
    n_gpus = mesh.n_gpus
    memory = MemoryModel(config)
    trains = call_type is FunctionCallType.TRAIN_STEP
    candidates: List[Tuple[int, int, int, ParallelStrategy]] = []
    for strategy in enumerate_strategies(n_gpus, config, max_tp=mesh.gpus_per_node):
        static = (
            memory.static_bytes_per_gpu(strategy.dp, strategy.tp, strategy.pp) if trains else 0.0
        )
        params = config.param_count() / (strategy.tp * strategy.pp) * 2
        if static + params > memory_fraction * cluster.device_memory_bytes:
            continue
        # Prefer the largest DP degree, break ties with the smallest PP (less
        # bubble), then the smallest TP (less collective overhead).
        candidates.append((strategy.dp, -strategy.pp, -strategy.tp, strategy))
    if not candidates:
        raise InfeasiblePlanError(
            f"{config.name} does not fit on a mesh of {n_gpus} GPUs with any 3D strategy "
            f"under a {memory_fraction:.0%} memory budget"
        )
    candidates.sort(key=lambda item: (item[0], item[1], item[2]), reverse=True)
    strategy = candidates[0][3]
    mbs = pick_microbatches(
        config, call_type, workload, strategy, cluster, batch_size,
        memory_fraction=min(memory_fraction, DEFAULT_CALL_MEMORY_FRACTION),
    )
    return Allocation(mesh=mesh, parallel=strategy, n_microbatches=mbs)


MEMORY_FRACTION_SCHEDULE = (0.5, 0.3, 0.18, 0.1, 0.06)
"""Per-model memory budgets tried in turn when several LLMs share a mesh."""


def build_symmetric_plan_with_budget(
    graph: DataflowGraph,
    workload: RLHFWorkload,
    cluster: ClusterSpec,
    mesh_of_call,
    plan_name: str,
) -> ExecutionPlan:
    """Build a symmetric Megatron-style plan, shrinking DP until memory fits.

    ``mesh_of_call`` maps a call to the device mesh it should run on.  Within
    each mesh a *single* 3D strategy is derived from the most demanding model
    placed there (the largest trainable one) and applied to every call on that
    mesh — this is exactly the "symmetric parallelization" of Figure 1 (top)
    and Tables 3/5, where all six function calls share the same TP/PP/DP.  The
    per-model memory budget is reduced step by step (pushing DP down and TP/PP
    up) until the whole plan's peak memory fits; if no budget works the
    workload is infeasible for this placement policy.
    """
    # Group calls by their target mesh and find the anchor model per mesh.
    calls_by_mesh: Dict[Tuple[int, ...], List] = {}
    for call in graph.calls:
        mesh = mesh_of_call(call)
        calls_by_mesh.setdefault(mesh.device_ids, []).append((call, mesh))

    def anchor_config(entries):
        trainable = [
            workload.model_config(c.model_name) for c, _ in entries if c.is_trainable
        ]
        if trainable:
            return max(trainable, key=lambda cfg: cfg.param_count())
        return max(
            (workload.model_config(c.model_name) for c, _ in entries),
            key=lambda cfg: cfg.param_count(),
        )

    last_error: Optional[Exception] = None
    for fraction in MEMORY_FRACTION_SCHEDULE:
        try:
            assignments: Dict[str, Allocation] = {}
            for entries in calls_by_mesh.values():
                mesh = entries[0][1]
                anchor = anchor_config(entries)
                anchor_call_type = (
                    FunctionCallType.TRAIN_STEP
                    if any(c.is_trainable for c, _ in entries)
                    else FunctionCallType.INFERENCE
                )
                anchor_alloc = megatron_heuristic_allocation(
                    anchor, anchor_call_type, workload, mesh, cluster,
                    batch_size=workload.batch_size, memory_fraction=fraction,
                )
                for call, _ in entries:
                    config = workload.model_config(call.model_name)
                    wl = workload.call_workload(call)
                    mbs = pick_microbatches(
                        config, call.call_type, workload, anchor_alloc.parallel, cluster,
                        batch_size=wl.batch_size,
                        memory_fraction=min(fraction, DEFAULT_CALL_MEMORY_FRACTION),
                    )
                    assignments[call.name] = Allocation(
                        mesh=mesh, parallel=anchor_alloc.parallel, n_microbatches=mbs
                    )
            plan = ExecutionPlan(assignments, name=plan_name)
        except InfeasiblePlanError as exc:
            last_error = exc
            continue
        estimator = RuntimeEstimator(graph, workload, cluster)
        if estimator.is_feasible(plan):
            return plan
    if last_error is not None:
        raise InfeasiblePlanError(str(last_error))
    raise InfeasiblePlanError(
        f"no symmetric 3D plan of {plan_name!r} fits in device memory for this workload"
    )


def split_cluster_into_groups(
    cluster: ClusterSpec, fractions: Sequence[float]
) -> List[DeviceMesh]:
    """Split the cluster into contiguous device meshes with given size ratios.

    When there are at least as many nodes as groups the split happens at node
    granularity; otherwise the GPUs are split into power-of-two blocks laid
    out in decreasing size so every block either covers whole nodes or a
    properly aligned slice of one node.  Used by the asymmetric baselines
    (OpenRLHF, NeMo-Aligner) that pin different models to disjoint GPU groups.
    """
    if abs(sum(fractions) - 1.0) > 1e-6:
        raise ValueError("group fractions must sum to 1")
    groups: List[DeviceMesh] = []
    if cluster.n_nodes >= len(fractions):
        counts = [max(1, round(f * cluster.n_nodes)) for f in fractions]
        # Fix rounding so the counts cover exactly all nodes.
        while sum(counts) > cluster.n_nodes:
            counts[counts.index(max(counts))] -= 1
        while sum(counts) < cluster.n_nodes:
            counts[counts.index(min(counts))] += 1
        start = 0
        for count in counts:
            groups.append(
                DeviceMesh(
                    cluster=cluster,
                    node_start=start,
                    n_nodes=count,
                    gpu_start=0,
                    gpus_per_node=cluster.gpus_per_node,
                )
            )
            start += count
        return groups

    # Fewer nodes than groups: partition at GPU granularity.
    total = cluster.n_gpus
    if len(fractions) > total:
        raise ValueError("more groups requested than GPUs in the cluster")
    sizes = sorted(_power_of_two_partition(total, fractions), reverse=True)
    offset = 0
    for size in sizes:
        node, local = divmod(offset, cluster.gpus_per_node)
        if size >= cluster.gpus_per_node:
            if local != 0 or size % cluster.gpus_per_node != 0:
                raise ValueError("cannot align a multi-node group to node boundaries")
            groups.append(
                DeviceMesh(
                    cluster=cluster,
                    node_start=node,
                    n_nodes=size // cluster.gpus_per_node,
                    gpu_start=0,
                    gpus_per_node=cluster.gpus_per_node,
                )
            )
        else:
            groups.append(
                DeviceMesh(
                    cluster=cluster,
                    node_start=node,
                    n_nodes=1,
                    gpu_start=local,
                    gpus_per_node=size,
                )
            )
        offset += size
    return groups


def _power_of_two_partition(width: int, fractions: Sequence[float]) -> List[int]:
    """Split ``width`` GPUs into power-of-two block sizes matching ``fractions``.

    Every block starts at size 1 and the remaining capacity is handed out by
    repeatedly doubling the block whose share is furthest below its target.
    """
    sizes = [1] * len(fractions)
    while sum(sizes) < width:
        deficits = [
            (fractions[i] * width - sizes[i], i)
            for i in range(len(sizes))
            if sum(sizes) + sizes[i] <= width
        ]
        if not deficits:
            break
        _, grow = max(deficits)
        sizes[grow] *= 2
    # Hand any leftover GPUs to the largest block (keeps blocks power-of-two).
    leftover = width - sum(sizes)
    if leftover:
        largest = sizes.index(max(sizes))
        if (sizes[largest] + leftover) & (sizes[largest] + leftover - 1) == 0:
            sizes[largest] += leftover
    return sizes
