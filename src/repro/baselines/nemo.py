"""NeMo-Aligner baseline: two GPU groups, actor generation colocated with training.

NeMo-Aligner (Shen et al., 2024) splits the cluster into two disjoint groups.
Unlike OpenRLHF it keeps actor training and generation on the same group
(TRT-LLM generation backend with resharding, Megatron-LM 3D training backend);
the critic, reward and reference models live on the second group.  Computation
is split into micro-batches and pipelined to reduce idle time, but the group
boundary still prevents the full cluster from working on any single call.
"""

from __future__ import annotations

from typing import Dict

from ..cluster.hardware import ClusterSpec
from ..core.dataflow import DataflowGraph, FunctionCallType
from ..core.plan import Allocation, ExecutionPlan
from ..core.workload import RLHFWorkload
from .base import (
    BaselineSystem,
    InfeasiblePlanError,
    build_symmetric_plan_with_budget,
    split_cluster_into_groups,
)

__all__ = ["NeMoAlignerSystem"]


class NeMoAlignerSystem(BaselineSystem):
    """Strategy model of NeMo-Aligner v0.4.0 (TRT-LLM + Megatron-LM backends)."""

    name = "NeMo-Aligner"

    def build_plan(
        self, graph: DataflowGraph, workload: RLHFWorkload, cluster: ClusterSpec
    ) -> ExecutionPlan:
        if cluster.n_gpus < 2:
            raise InfeasiblePlanError("NeMo-Aligner needs at least 2 GPUs for its two groups")
        actor_group, critic_group = split_cluster_into_groups(cluster, (0.5, 0.5))
        group_of_model = {
            "actor": actor_group,
            "ref": critic_group,
            "critic": critic_group,
            "reward": critic_group,
        }
        return build_symmetric_plan_with_budget(
            graph,
            workload,
            cluster,
            mesh_of_call=lambda call: group_of_model.get(call.model_name, actor_group),
            plan_name="nemo-aligner",
        )
