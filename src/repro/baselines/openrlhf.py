"""OpenRLHF baseline: three disjoint GPU groups with a dedicated vLLM engine.

OpenRLHF (Hu et al., 2024) divides the cluster into three groups holding (1) a
vLLM generation engine, (2) the actor and reference models, and (3) the critic
and reward models.  Actor and critic training can run concurrently, but the
generation group sits idle during training and the training groups sit idle
during generation, because of the data and parameter dependencies — the
under-utilisation the paper's Figure 1 (middle) illustrates.
"""

from __future__ import annotations

from typing import Dict

from ..cluster.hardware import ClusterSpec
from ..core.dataflow import DataflowGraph, FunctionCallType
from ..core.parallel import ParallelStrategy
from ..core.plan import Allocation, ExecutionPlan
from ..core.workload import RLHFWorkload
from .base import (
    BaselineSystem,
    InfeasiblePlanError,
    pick_microbatches,
    split_cluster_into_groups,
)

__all__ = ["OpenRLHFSystem"]


class OpenRLHFSystem(BaselineSystem):
    """Strategy model of OpenRLHF v0.4.2 (vLLM generation + ZeRO-3 training)."""

    name = "OpenRLHF"

    def build_plan(
        self, graph: DataflowGraph, workload: RLHFWorkload, cluster: ClusterSpec
    ) -> ExecutionPlan:
        if cluster.n_gpus < 3:
            raise InfeasiblePlanError("OpenRLHF needs at least 3 GPUs for its three groups")
        actor_group, generation_group, critic_group = split_cluster_into_groups(
            cluster, (0.5, 0.25, 0.25)
        )
        group_of_model = {
            "actor": actor_group,
            "ref": actor_group,
            "critic": critic_group,
            "reward": critic_group,
        }
        assignments: Dict[str, Allocation] = {}
        for call in graph.calls:
            config = workload.model_config(call.model_name)
            wl = workload.call_workload(call)
            if call.call_type is FunctionCallType.GENERATE:
                mesh = generation_group
                # vLLM: tensor parallelism within the node, data parallel
                # engine replicas across nodes; continuous batching is modelled
                # as micro-batching the prompt set to bound the KV cache.
                tp = min(cluster.gpus_per_node, mesh.n_gpus)
                while (config.n_heads % tp != 0 or tp > mesh.n_gpus) and tp > 1:
                    tp //= 2
                strategy = ParallelStrategy(dp=mesh.n_gpus // tp, tp=tp, pp=1)
                mbs = pick_microbatches(
                    config, call.call_type, workload, strategy, cluster,
                    batch_size=wl.batch_size,
                )
                assignments[call.name] = Allocation(
                    mesh=mesh, parallel=strategy, n_microbatches=mbs
                )
                continue
            mesh = group_of_model.get(call.model_name, actor_group)
            # DeepSpeed ZeRO-3 data parallelism inside the group.
            dp = mesh.n_gpus
            if dp > wl.batch_size:
                raise InfeasiblePlanError(
                    f"ZeRO-3 DP degree {dp} exceeds the batch size {wl.batch_size}"
                )
            strategy = ParallelStrategy(dp=dp, tp=1, pp=1)
            mbs = pick_microbatches(
                config, call.call_type, workload, strategy, cluster,
                batch_size=wl.batch_size, zero3=True,
            )
            assignments[call.name] = Allocation(
                mesh=mesh, parallel=strategy, n_microbatches=mbs, zero3=True
            )
        return ExecutionPlan(assignments, name="openrlhf")
