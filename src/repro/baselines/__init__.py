"""Baseline RLHF systems reproduced as placement/parallelization strategy models."""

from .base import (
    BaselineSystem,
    InfeasiblePlanError,
    SystemEvaluation,
    megatron_heuristic_allocation,
    pick_microbatches,
    split_cluster_into_groups,
)
from .dschat import DeepSpeedChatSystem
from .heuristic import RealHeuristicSystem, build_heuristic_plan
from .nemo import NeMoAlignerSystem
from .openrlhf import OpenRLHFSystem
from .real import RealSystem
from .verl import VeRLSystem

__all__ = [
    "BaselineSystem",
    "SystemEvaluation",
    "InfeasiblePlanError",
    "megatron_heuristic_allocation",
    "pick_microbatches",
    "split_cluster_into_groups",
    "RealHeuristicSystem",
    "build_heuristic_plan",
    "DeepSpeedChatSystem",
    "OpenRLHFSystem",
    "NeMoAlignerSystem",
    "VeRLSystem",
    "RealSystem",
]

ALL_BASELINES = (
    DeepSpeedChatSystem,
    OpenRLHFSystem,
    NeMoAlignerSystem,
    VeRLSystem,
    RealHeuristicSystem,
)
"""The comparison set of Figure 7 (excluding ReaL itself)."""
