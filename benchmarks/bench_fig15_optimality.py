"""Figure 15: MCMC search versus the brute-force optimum on 8 GPUs.

In the 7B+7B / 8-GPU setting the paper compares the plan produced by the MCMC
search against the exhaustively enumerated optimum for three batch-size /
sequence-length combinations: the search reaches >= 95% of the optimal
performance within seconds and finds the optimum within minutes.
"""

from conftest import bench_search_config, run_once

from repro.algorithms import build_ppo_graph
from repro.cluster import make_cluster
from repro.core import (
    MCMCSearcher,
    PruneConfig,
    allocation_options,
    brute_force_search,
    instructgpt_workload,
)
from repro.experiments import format_table

SETTINGS = [
    ("BS=512, SeqLen=2048", 512, 1024, 1024),
    ("BS=1024, SeqLen=1024", 1024, 512, 512),
    ("BS=2048, SeqLen=512", 2048, 256, 256),
]


def run_figure15():
    graph = build_ppo_graph()
    cluster = make_cluster(8)
    # Reduce the per-call option set so exhaustive enumeration stays tractable
    # (full-node meshes, one micro-batch choice, no pipeline parallelism).
    prune = PruneConfig(microbatch_choices=(8,), min_mesh_gpus=8)
    rows = []
    for label, batch, prompt_len, gen_len in SETTINGS:
        workload = instructgpt_workload("7b", "7b", batch_size=batch,
                                        prompt_len=prompt_len, gen_len=gen_len)
        options = allocation_options(graph, workload, cluster, prune)
        options = {
            name: [a for a in choices if a.parallel.pp == 1]
            for name, choices in options.items()
        }
        brute = brute_force_search(graph, workload, cluster, options=options)
        mcmc = MCMCSearcher(
            graph, workload, cluster, options=options, config=bench_search_config()
        ).search()
        rows.append(
            {
                "setting": label,
                "plans enumerated": brute.n_evaluated,
                "optimal cost (s)": round(brute.best_cost, 1),
                "MCMC cost (s)": round(mcmc.best_cost, 1),
                "fraction of optimum": round(brute.best_cost / mcmc.best_cost, 3),
            }
        )
    return rows


def test_figure15_mcmc_vs_brute_force(benchmark):
    rows = run_once(benchmark, run_figure15)
    print()
    print(format_table(rows, title="Figure 15: MCMC search vs brute-force optimum (8 GPUs)"))
    for row in rows:
        # The search achieves at least 95% of the optimal performance.
        assert row["fraction of optimum"] >= 0.95
