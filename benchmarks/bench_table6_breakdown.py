"""Table 6: RLHF wall-time breakdown, ReaL vs heuristic, with/without CUDA graphs.

For the representative 7B+7B (and, at full scale, 70B+7B) settings the paper
breaks the iteration into its six function calls and reports the end-to-end
time with and without CUDA-graph decoding.  Expected shape: ReaL accelerates
every individual call or overlaps it with others, generation dominates the
iteration, and disabling CUDA graphs hurts mostly the generation call.
"""

from conftest import bench_scale, bench_search_config, run_once

from repro.algorithms import build_ppo_graph
from repro.baselines import RealSystem, build_heuristic_plan
from repro.cluster import make_cluster
from repro.core import instructgpt_workload
from repro.experiments import format_table
from repro.runtime import RuntimeEngine


def run_table6():
    graph = build_ppo_graph()
    cases = [("7B+7B", "7b", "7b", 16, 512)]
    if bench_scale() == "full":
        cases.append(("70B+7B", "70b", "7b", 128, 4096))
    tables = {}
    for label, actor, critic, n_gpus, batch in cases:
        workload = instructgpt_workload(actor, critic, batch_size=batch)
        cluster = make_cluster(n_gpus)
        plans = {
            "ReaL": RealSystem(search_config=bench_search_config()).build_plan(graph, workload, cluster),
            "Heuristic": build_heuristic_plan(graph, workload, cluster),
        }
        rows = []
        summary = {}
        for system, plan in plans.items():
            for use_graph in (True, False):
                engine = RuntimeEngine(cluster, workload, use_cuda_graph=use_graph)
                trace = engine.run_iteration(graph, plan)
                call_seconds = trace.call_seconds()
                key = (system, use_graph)
                summary[key] = trace.total_seconds
                rows.append(
                    {
                        "system": system,
                        "CUDAGraph": "yes" if use_graph else "no",
                        **{name: round(seconds, 1) for name, seconds in call_seconds.items()},
                        "End2End": round(trace.total_seconds, 1),
                    }
                )
        tables[label] = (rows, summary)
    return tables


def test_table6_wall_time_breakdown(benchmark):
    tables = run_once(benchmark, run_table6)
    print()
    for label, (rows, summary) in tables.items():
        print(format_table(rows, title=f"Table 6: wall-time breakdown, {label}"))
        print()
        # ReaL end-to-end <= heuristic end-to-end (both with CUDA graphs).
        assert summary[("ReaL", True)] <= summary[("Heuristic", True)] * 1.02
        # Disabling CUDA-graph decoding slows both systems down.
        assert summary[("ReaL", False)] >= summary[("ReaL", True)]
        assert summary[("Heuristic", False)] >= summary[("Heuristic", True)]
