"""Figure 7: end-to-end weak-scaling throughput versus the baseline systems.

The paper compares ReaL against DeepSpeed-Chat, OpenRLHF, NeMo-Aligner and
veRL while scaling the actor (7B..70B) and the batch with the cluster
(16..128 GPUs).  Expected shape: ReaL achieves the highest throughput at every
point (up to ~3.6x over the weakest baseline), with veRL the strongest
baseline; some baselines become infeasible (OOM) at the larger scales.
"""

from conftest import bench_scale, bench_search_config, run_once

from repro.baselines import (
    DeepSpeedChatSystem,
    NeMoAlignerSystem,
    OpenRLHFSystem,
    RealHeuristicSystem,
    RealSystem,
    VeRLSystem,
)
from repro.experiments import format_table, run_comparison, weak_scaling_settings


def run_figure7():
    settings = weak_scaling_settings("7b")
    if bench_scale() != "full":
        settings = settings[:2]  # 7B@16 GPUs and 13B@32 GPUs
    systems = [
        DeepSpeedChatSystem(),
        OpenRLHFSystem(),
        NeMoAlignerSystem(),
        VeRLSystem(),
        RealHeuristicSystem(),
        RealSystem(search_config=bench_search_config()),
    ]
    records = run_comparison(settings, systems)
    return settings, records


def test_figure7_end_to_end_throughput(benchmark):
    settings, records = run_once(benchmark, run_figure7)
    rows = [r.as_row() for r in records]
    print()
    print(format_table(rows, title="Figure 7: weak-scaling throughput (PFLOP/s) vs baselines"))

    for setting in settings:
        here = [r for r in records if r.setting == setting.name]
        real = next(r for r in here if r.system == "ReaL")
        assert real.feasible, "ReaL must run every weak-scaling point"
        # ReaL is at least as fast as every feasible baseline (small tolerance
        # for estimator-vs-engine mismatch).
        for record in here:
            if record.system != "ReaL" and record.feasible:
                assert real.petaflops >= record.petaflops * 0.95
