"""Figure 11: GPU-time breakdown of one RLHF iteration, ReaL vs ReaL-Heuristic.

The CUDA-kernel time of an iteration is decomposed into compute, point-to-point
(pipeline) communication, collective (TP/DP) communication and idle time.
Expected shape: ReaL's searched plan spends a larger *fraction* of GPU time in
compute and less in parallelization overhead than the symmetric heuristic.
"""

from conftest import bench_scale, bench_search_config, run_once

from repro.algorithms import build_ppo_graph
from repro.baselines import RealSystem, build_heuristic_plan
from repro.cluster import make_cluster
from repro.core import instructgpt_workload
from repro.experiments import format_table
from repro.runtime import RuntimeEngine


def run_figure11():
    cases = [("7B+7B", "7b", "7b", 16, 512)]
    if bench_scale() == "full":
        cases += [("34B+7B", "34b", "7b", 64, 2048), ("70B+7B", "70b", "7b", 128, 4096)]
    graph = build_ppo_graph()
    rows = []
    for label, actor, critic, n_gpus, batch in cases:
        workload = instructgpt_workload(actor, critic, batch_size=batch)
        cluster = make_cluster(n_gpus)
        engine = RuntimeEngine(cluster, workload)
        plans = {
            "ReaL": RealSystem(search_config=bench_search_config()).build_plan(graph, workload, cluster),
            "Heuristic": build_heuristic_plan(graph, workload, cluster),
        }
        for system, plan in plans.items():
            trace = engine.run_iteration(graph, plan)
            fractions = trace.gpu_time_fractions()
            rows.append(
                {
                    "setting": label,
                    "system": system,
                    "s/iter": round(trace.total_seconds, 1),
                    "compute": round(fractions["compute"], 3),
                    "p2p": round(fractions["p2p"], 3),
                    "collective": round(fractions["collective"], 3),
                    "idle+bubble": round(fractions["idle"], 3),
                }
            )
    return rows


def test_figure11_gpu_time_breakdown(benchmark):
    rows = run_once(benchmark, run_figure11)
    print()
    print(format_table(rows, title="Figure 11: GPU time breakdown (fractions of GPU-seconds)"))
    by_setting = {}
    for row in rows:
        by_setting.setdefault(row["setting"], {})[row["system"]] = row
    for setting, pair in by_setting.items():
        real, heuristic = pair["ReaL"], pair["Heuristic"]
        # ReaL spends no more *absolute* GPU time on parallelization overhead
        # (collective + P2P communication, including reallocation broadcasts)
        # than the heuristic, while finishing the iteration at least as fast.
        overhead_real = (real["collective"] + real["p2p"]) * real["s/iter"]
        overhead_heur = (heuristic["collective"] + heuristic["p2p"]) * heuristic["s/iter"]
        assert overhead_real <= overhead_heur * 1.1
        assert real["s/iter"] <= heuristic["s/iter"] * 1.02
