"""Shared helpers for the benchmark harness.

Every file in this directory regenerates one table or figure of the paper.
Benchmarks run the full pipeline (plan search + simulated execution) once per
invocation via ``benchmark.pedantic`` and print the rows/series the paper
reports; absolute numbers come from the simulated cluster, so only the *shape*
(who wins, by roughly what factor, where crossovers fall) is expected to match
the paper.

Set ``REPRO_BENCH_SCALE=full`` to run every point of every figure (slow) and
``REPRO_SEARCH_BUDGET_SCALE`` to enlarge the MCMC budget.
"""

from __future__ import annotations

import os

import pytest

from repro.core import SearchConfig

__all__ = ["run_once", "bench_scale", "bench_search_config"]


def bench_scale() -> str:
    """``small`` (default, CI-friendly) or ``full`` (every figure point)."""
    return os.environ.get("REPRO_BENCH_SCALE", "small").lower()


def bench_search_config(seed: int = 0) -> SearchConfig:
    """Search budget used inside benchmarks (scaled via the environment)."""
    scale = 1.0
    try:
        scale = float(os.environ.get("REPRO_SEARCH_BUDGET_SCALE", "1.0"))
    except ValueError:
        pass
    return SearchConfig(
        max_iterations=int(2000 * scale), time_budget_s=20.0 * scale, seed=seed
    )


def run_once(benchmark, func, *args, **kwargs):
    """Run a benchmark target exactly once (these targets take seconds)."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def scale() -> str:
    return bench_scale()
