"""Figure 12: profiler cost (left) and estimator accuracy (right).

Left: the wall time the profiler would need per model (the paper reports under
four minutes per model on real hardware).  Right: estimated iteration time
versus the runtime engine's "real" (simulated) time for both the searched and
the heuristic plan — relative differences stay below ~25% and the relative
ordering of plans is preserved.
"""

from conftest import bench_scale, bench_search_config, run_once

from repro.algorithms import build_ppo_graph
from repro.baselines import RealSystem, build_heuristic_plan
from repro.cluster import make_cluster
from repro.core import Profiler, RuntimeEstimator, instructgpt_workload
from repro.experiments import format_table
from repro.model import MODEL_SIZES, get_model_config
from repro.runtime import RuntimeEngine


def run_profiler_cost():
    cluster = make_cluster(16)
    profiler = Profiler(cluster)
    rows = []
    profiles = {}
    for size in MODEL_SIZES:
        stats = profiler.profile(get_model_config(size), max_tokens=2 ** 20,
                                 seq_lengths=(256, 512, 1024), max_batch=512)
        profiles[size] = stats
        rows.append(
            {
                "model": size.upper(),
                "measurements": stats.sample_count(),
                "profiling wall time (s)": round(stats.profiling_seconds, 1),
            }
        )
    return rows, profiles


def run_estimator_accuracy():
    graph = build_ppo_graph()
    cases = [("7b", "7b", 16, 512)]
    if bench_scale() == "full":
        cases.append(("13b", "7b", 32, 1024))
    rows = []
    for actor, critic, n_gpus, batch in cases:
        workload = instructgpt_workload(actor, critic, batch_size=batch)
        cluster = make_cluster(n_gpus)
        profiler = Profiler(cluster)
        profiles = {
            name: profiler.profile(workload.model_config(name), max_tokens=2 ** 20,
                                   seq_lengths=(512, 1024, 2048), max_batch=batch)
            for name in graph.model_names()
        }
        estimator = RuntimeEstimator(graph, workload, cluster, profiles=profiles)
        engine = RuntimeEngine(cluster, workload)
        plans = {
            "heuristic": build_heuristic_plan(graph, workload, cluster),
            "searched": RealSystem(search_config=bench_search_config()).build_plan(
                graph, workload, cluster
            ),
        }
        for plan_name, plan in plans.items():
            estimated = estimator.time_cost(plan).total_seconds
            real = engine.run_iteration(graph, plan).total_seconds
            rows.append(
                {
                    "setting": f"{actor}+{critic}",
                    "plan": plan_name,
                    "estimated (s)": round(estimated, 1),
                    "real (s)": round(real, 1),
                    "rel. error": f"{abs(estimated - real) / real * 100:.1f}%",
                }
            )
    return rows


def test_figure12_left_profiler_cost(benchmark):
    rows, _profiles = run_once(benchmark, run_profiler_cost)
    print()
    print(format_table(rows, title="Figure 12 (left): profiler wall time per model"))
    times = [row["profiling wall time (s)"] for row in rows]
    # Profiling cost grows with the model size and stays in the minutes range.
    assert times == sorted(times)
    assert all(t < 3600 for t in times)


def test_figure12_right_estimator_accuracy(benchmark):
    rows = run_once(benchmark, run_estimator_accuracy)
    print()
    print(format_table(rows, title="Figure 12 (right): estimated vs real iteration time"))
    for row in rows:
        assert float(row["rel. error"].rstrip("%")) < 30.0
    # Rank preservation between the two plans of each setting.
    by_setting = {}
    for row in rows:
        by_setting.setdefault(row["setting"], []).append(row)
    for setting_rows in by_setting.values():
        est_order = sorted(setting_rows, key=lambda r: r["estimated (s)"])
        real_order = sorted(setting_rows, key=lambda r: r["real (s)"])
        assert [r["plan"] for r in est_order] == [r["plan"] for r in real_order]
