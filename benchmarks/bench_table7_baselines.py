"""Table 7: the baseline systems, their versions and backends.

This is a documentation table in the paper; here it doubles as a smoke test
that every baseline strategy model is constructible and produces a plan (or a
well-formed infeasibility report) on a small shared setting.
"""

from conftest import run_once

from repro.algorithms import build_ppo_graph
from repro.baselines import (
    DeepSpeedChatSystem,
    NeMoAlignerSystem,
    OpenRLHFSystem,
    RealHeuristicSystem,
    VeRLSystem,
)
from repro.cluster import make_cluster
from repro.core import instructgpt_workload
from repro.experiments import format_table

BASELINE_INFO = [
    ("DeepSpeedChat", "commit f73a6ed", "DeepSpeed v0.15.1", "DeepSpeed v0.15.1 (ZeRO-3 + HybridEngine)"),
    ("OpenRLHF", "v0.4.2", "vLLM v0.4.2", "DeepSpeed v0.15.0 (ZeRO-3)"),
    ("NeMo-Aligner", "v0.4.0", "TRT-LLM v0.10.0", "Megatron-LM v0.8.0"),
    ("veRL", "v0.2.0.post2", "vLLM v0.6.3", "PyTorch FSDP v2.4.0 / Megatron-LM"),
    ("ReaL-Heuristic", "this repo", "analytical engine", "Megatron-style symmetric 3D"),
]

SYSTEMS = {
    "DeepSpeedChat": DeepSpeedChatSystem,
    "OpenRLHF": OpenRLHFSystem,
    "NeMo-Aligner": NeMoAlignerSystem,
    "veRL": VeRLSystem,
    "ReaL-Heuristic": RealHeuristicSystem,
}


def run_table7():
    graph = build_ppo_graph()
    workload = instructgpt_workload("7b", "7b", batch_size=128)
    cluster = make_cluster(16)
    rows = []
    for name, version, gen_backend, train_backend in BASELINE_INFO:
        system = SYSTEMS[name]()
        evaluation = system.evaluate(graph, workload, cluster)
        rows.append(
            {
                "System": name,
                "Version": version,
                "Generation backend": gen_backend,
                "Training backend": train_backend,
                "Runs 7B+7B/16 GPUs": "yes" if evaluation.feasible else "OOM",
            }
        )
    return rows


def test_table7_baseline_systems(benchmark):
    rows = run_once(benchmark, run_table7)
    print()
    print(format_table(rows, title="Table 7: baseline systems and backends"))
    assert len(rows) == 5
    assert {row["System"] for row in rows} == set(SYSTEMS)
