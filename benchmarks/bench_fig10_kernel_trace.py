"""Figure 10: kernel-level effect of the parallelization strategy choice.

The paper's simplified kernel traces show two effects: (1) during decoding,
preferring TP over PP avoids per-step pipeline synchronisation, and excessive
TP wastes time in all-reduces while extra DP is free; (2) during training,
a larger PP degree with many micro-batches trades a small bubble for much less
collective communication than high TP.
"""

from conftest import run_once

from repro.cluster import make_cluster
from repro.experiments import format_table
from repro.model import LayerCostModel, get_model_config


def run_figure10():
    cluster = make_cluster(128)
    model = LayerCostModel(get_model_config("70b"), cluster)

    decode_rows = []
    for tp, batch in [(2, 2), (8, 2)]:
        timing = model.decode_time(batch=batch, kv_len=1536, tp=tp, use_cuda_graph=True)
        decode_rows.append(
            {
                "config": f"decode tp={tp} batch={batch}",
                "compute+IO (us)": round(timing.compute_s * 1e6, 0),
                "all-reduce (us)": round(timing.tp_comm_s * 1e6, 0),
                "launch (us)": round(timing.launch_s * 1e6, 0),
                "total (us)": round(timing.total_s * 1e6, 0),
            }
        )

    train_rows = []
    for tp, tokens in [(2, 16 * 2048), (8, 32 * 2048)]:
        timing = model.forward_time(n_tokens=tokens, seqlen=2048, tp=tp)
        train_rows.append(
            {
                "config": f"train fwd tp={tp} tokens={tokens}",
                "compute (ms)": round(timing.compute_s * 1e3, 1),
                "all-reduce (ms)": round(timing.tp_comm_s * 1e3, 1),
                "total (ms)": round(timing.total_s * 1e3, 1),
            }
        )
    return decode_rows, train_rows


def test_figure10_kernel_traces(benchmark):
    decode_rows, train_rows = run_once(benchmark, run_figure10)
    print()
    print(format_table(decode_rows, title="Figure 10 (top): 70B decoding step, one layer"))
    print()
    print(format_table(train_rows, title="Figure 10 (bottom): 70B training forward, one layer"))

    # Decoding: TP=8 shrinks the memory-I/O time but pays a visible all-reduce.
    assert decode_rows[1]["compute+IO (us)"] < decode_rows[0]["compute+IO (us)"]
    assert decode_rows[1]["all-reduce (us)"] > decode_rows[0]["all-reduce (us)"]
    # Training: the high-TP configuration spends relatively more on all-reduce.
    low_tp_ratio = train_rows[0]["all-reduce (ms)"] / train_rows[0]["total (ms)"]
    high_tp_ratio = train_rows[1]["all-reduce (ms)"] / train_rows[1]["total (ms)"]
    assert high_tp_ratio > low_tp_ratio
