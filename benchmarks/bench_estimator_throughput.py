"""Estimator throughput: plans evaluated per second, before vs. after.

The MCMC search is estimator-bound: the paper's "fraction of a millisecond"
per plan evaluation is what makes searching a 10^16-sized space feasible.
This benchmark measures, on the Figure-13 setup (PPO, 7B actor + 7B critic,
16 GPUs, batch 512, context 2048):

* plans evaluated per second by the pre-PR estimator (``use_cache=False``,
  full recompute per plan) vs. the memoised + incremental ``cost_delta``
  fast path, over the same sequence of random single-call moves;
* MCMC iterations completed within the same ``time_budget_s`` by a searcher
  driving each estimator.

Run standalone (``python benchmarks/bench_estimator_throughput.py``; add
``--smoke`` for a seconds-long CI-friendly run) or via pytest
(``pytest benchmarks/bench_estimator_throughput.py``).
"""

from __future__ import annotations

import argparse
import time
from typing import Dict, List, Tuple

import numpy as np

import heapq

from repro.algorithms import build_ppo_graph
from repro.cluster import make_cluster
from repro.core import (
    Allocation,
    MCMCSearcher,
    RuntimeEstimator,
    SearchConfig,
    allocation_options,
    instructgpt_workload,
    reallocation_edges,
)
from repro.core.estimator import DEFAULT_OOM_PENALTY
from repro.experiments import format_table, gpus_for_actor
from repro.model.memory import PARAM_BYTES

FULL_SPEEDUP_TARGET = 5.0
SMOKE_SPEEDUP_TARGET = 1.5


class PrePREstimator(RuntimeEstimator):
    """Faithful reference of the seed estimator: full recompute per plan.

    ``cost`` rebuilds per-call breakdowns, reallocation edges, transfer times,
    the adjacency maps and the per-GPU memory dictionaries from scratch on
    every evaluation, exactly like the pre-PR implementation did.  Only
    ``call_time`` stays memoised (the seed cached it for the greedy plan).
    There is no incremental path.
    """

    cost_delta = None  # force MCMCSearcher onto the full-cost fallback

    def cost(self, plan, oom_penalty: float = DEFAULT_OOM_PENALTY) -> float:
        graph, workload, cluster = self.graph, self.workload, self.cluster
        parents = graph.parents_map()
        children = graph.children_map()
        durations = {}
        for name in graph.call_names:
            call = graph.get(name)
            wl = workload.call_workload(call)
            durations[name] = self.cost_model(call.model_name).breakdown(
                call, wl, plan[name]
            ).total
        realloc_in = {name: 0.0 for name in graph.call_names}
        for edge in reallocation_edges(graph, plan):
            config = workload.model_config(edge.model_name)
            realloc_in[edge.dst_call] += self.realloc_model.cost(
                config, edge.src, edge.dst
            ).seconds
        edge_transfer = {}
        for src, dst in graph.edges:
            src_alloc, dst_alloc = plan[src], plan[dst]
            if (
                src_alloc.mesh == dst_alloc.mesh
                and src_alloc.parallel.dp == dst_alloc.parallel.dp
                and src_alloc.parallel.tp == dst_alloc.parallel.tp
            ):
                edge_transfer[(src, dst)] = 0.0
            else:
                wl = workload.call_workload(graph.get(dst))
                nbytes = wl.batch_size * wl.seqlen * 16.0
                cross = src_alloc.mesh.node_ids != dst_alloc.mesh.node_ids
                edge_transfer[(src, dst)] = self.comm.p2p_time_cross(nbytes, cross)

        ready_time = {name: 0.0 for name in graph.call_names}
        remaining = {name: len(parents[name]) for name in graph.call_names}
        gpu_free = {g: 0.0 for g in range(cluster.n_gpus)}
        spans = {}
        completed = set()
        heap = [(0.0, name) for name in graph.call_names if remaining[name] == 0]
        heapq.heapify(heap)
        while heap:
            rt, name = heapq.heappop(heap)
            if name in completed:
                continue
            mesh_gpus = plan[name].mesh.device_ids
            start = max(rt, max(gpu_free[g] for g in mesh_gpus))
            end = start + durations[name] + realloc_in[name] + cluster.rpc_overhead_s
            spans[name] = (start, end)
            completed.add(name)
            for g in mesh_gpus:
                gpu_free[g] = end
            for child in children[name]:
                transfer = edge_transfer.get((name, child), 0.0)
                ready_time[child] = max(ready_time[child], end + transfer)
                remaining[child] -= 1
                if remaining[child] == 0:
                    heapq.heappush(heap, (ready_time[child], child))
        time_cost = max(end for _, end in spans.values())

        static = {g: 0.0 for g in range(cluster.n_gpus)}
        params = {}
        active = {g: 0.0 for g in range(cluster.n_gpus)}
        for name in graph.call_names:
            call = graph.get(name)
            alloc = plan[name]
            cm = self.cost_model(call.model_name)
            wl = workload.call_workload(call)
            shard = workload.model_config(call.model_name).param_count() / (
                alloc.parallel.tp * alloc.parallel.pp
            )
            if alloc.zero3:
                shard /= alloc.parallel.dp
            param_bytes = shard * PARAM_BYTES
            call_static = cm.static_memory(call, alloc)
            call_active = max(cm.active_memory(call, wl, alloc) - param_bytes, 0.0)
            for g in alloc.mesh.device_ids:
                static[g] += call_static
                key = (g, call.model_name)
                params[key] = max(params.get(key, 0.0), param_bytes)
                active[g] = max(active[g], call_active)
        params_per_gpu = {g: 0.0 for g in static}
        for (g, _model), nbytes in params.items():
            params_per_gpu[g] += nbytes
        max_bytes = max(static[g] + params_per_gpu[g] + active[g] for g in static)

        if max_bytes < cluster.device_memory_bytes:
            return time_cost
        return oom_penalty * time_cost


def figure13_setup():
    """The Figure-13 base point: PPO with a 7B actor on its weak-scaling cluster."""
    graph = build_ppo_graph()
    n_gpus = gpus_for_actor("7b")
    workload = instructgpt_workload(
        "7b", "7b", batch_size=n_gpus * 32, prompt_len=1024, gen_len=1024
    )
    cluster = make_cluster(n_gpus)
    return graph, workload, cluster


def _random_moves(graph, options, n_moves: int, seed: int) -> List[Tuple[str, Allocation]]:
    rng = np.random.default_rng(seed)
    names = graph.call_names
    moves = []
    for _ in range(n_moves):
        name = names[int(rng.integers(len(names)))]
        choices = options[name]
        moves.append((name, choices[int(rng.integers(len(choices)))]))
    return moves


def _eval_rate_full(estimator, plan, moves) -> float:
    """Plans/s evaluating every move from scratch along a random walk."""
    start = time.perf_counter()
    for call_name, alloc in moves:
        plan = plan.with_assignment(call_name, alloc)
        estimator.cost(plan)
    return len(moves) / (time.perf_counter() - start)


def _eval_rate_delta(estimator, plan, moves) -> float:
    """Plans/s via cost_delta along the same walk (the MCMC access pattern:
    the base plan keeps evolving, so signature-level caching rarely hits)."""
    start = time.perf_counter()
    for call_name, alloc in moves:
        estimator.cost_delta(plan, call_name, alloc)
        plan = plan.with_assignment(call_name, alloc)
    return len(moves) / (time.perf_counter() - start)


def _search_iterations(graph, workload, cluster, estimator, options, budget_s: float) -> int:
    config = SearchConfig(
        max_iterations=10**9,
        time_budget_s=budget_s,
        seed=0,
        record_history=False,
    )
    searcher = MCMCSearcher(
        graph, workload, cluster, estimator=estimator, options=options, config=config
    )
    return searcher.search().n_iterations


def run_benchmark(smoke: bool = False) -> Dict[str, float]:
    graph, workload, cluster = figure13_setup()
    options = allocation_options(graph, workload, cluster)
    slow = PrePREstimator(graph, workload, cluster)
    fast = RuntimeEstimator(graph, workload, cluster)
    plan = MCMCSearcher(graph, workload, cluster, estimator=fast, options=options).greedy_initial_plan()

    n_slow = 100 if smoke else 500
    n_fast = 500 if smoke else 5000
    moves_fast = _random_moves(graph, options, n_fast, seed=1)
    moves_warm = _random_moves(graph, options, n_fast, seed=2)
    moves_slow = moves_fast[:n_slow]

    # Consistency: both paths must score identical costs for identical moves.
    n_check = 25 if smoke else 100
    for call_name, alloc in moves_fast[:n_check]:
        fast_cost = fast.cost_delta(plan, call_name, alloc)
        slow_cost = slow.cost(plan.with_assignment(call_name, alloc))
        assert fast_cost == slow_cost, (
            f"fast/slow cost mismatch for {call_name}: {fast_cost!r} != {slow_cost!r}"
        )

    # Warm the component caches on a *different* walk (MCMC steady state has
    # warm per-call/per-edge caches but keeps visiting new whole plans), then
    # time a fresh walk so plan-signature hits stay as rare as in real search.
    # Median of three repeats damps scheduler noise on shared machines; each
    # fast repeat gets a fresh walk so the plan-signature cache cannot inflate
    # the rate by replaying identical plans.
    _eval_rate_delta(fast, plan, moves_warm)
    fast_rate = sorted(
        _eval_rate_delta(fast, plan, _random_moves(graph, options, n_fast, seed=10 + rep))
        for rep in range(3)
    )[1]
    slow_rate = sorted(_eval_rate_full(slow, plan, moves_slow) for _ in range(3))[1]
    eval_speedup = fast_rate / slow_rate

    budget_s = 0.5 if smoke else 3.0
    slow_iters = _search_iterations(graph, workload, cluster, slow, options, budget_s)
    fast_iters = _search_iterations(graph, workload, cluster, fast, options, budget_s)
    iter_speedup = fast_iters / max(1, slow_iters)

    rows = [
        {
            "path": "full recompute (pre-PR)",
            "plans/s": round(slow_rate),
            f"MCMC iters in {budget_s}s": slow_iters,
        },
        {
            "path": "memoised + cost_delta",
            "plans/s": round(fast_rate),
            f"MCMC iters in {budget_s}s": fast_iters,
        },
        {
            "path": "speedup",
            "plans/s": f"{eval_speedup:.1f}x",
            f"MCMC iters in {budget_s}s": f"{iter_speedup:.1f}x",
        },
    ]
    print()
    print(format_table(rows, title="Estimator throughput (Figure-13 setup: PPO 7B+7B, 16 GPUs)"))
    return {
        "slow_rate": slow_rate,
        "fast_rate": fast_rate,
        "eval_speedup": eval_speedup,
        "slow_iters": float(slow_iters),
        "fast_iters": float(fast_iters),
        "iter_speedup": iter_speedup,
    }


def _check(results: Dict[str, float], smoke: bool) -> None:
    # Smoke runs (CI) exercise the fast path and only sanity-check the ratio;
    # full runs enforce the >= 5x acceptance target.
    target = SMOKE_SPEEDUP_TARGET if smoke else FULL_SPEEDUP_TARGET
    assert results["eval_speedup"] >= target, (
        f"fast path is only {results['eval_speedup']:.2f}x the full recompute, "
        f"expected >= {target}x"
    )


def test_estimator_throughput(benchmark):
    from conftest import run_once

    results = run_once(benchmark, run_benchmark, smoke=True)
    _check(results, smoke=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-long CI run: fewer evaluations, relaxed speedup threshold",
    )
    args = parser.parse_args(argv)
    results = run_benchmark(smoke=args.smoke)
    _check(results, smoke=args.smoke)
    print(
        f"\nOK: {results['eval_speedup']:.1f}x plans/s, "
        f"{results['iter_speedup']:.1f}x MCMC iterations in the same budget"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
