"""Figure 17: strong scaling throughput and static-memory utilisation.

With the problem size fixed, adding GPUs first yields linear or super-linear
gains (parallelizing compute and trading memory for communication) and then
hits diminishing returns once auto-regressive generation's memory I/O becomes
the bottleneck.  The paper recommends static-memory utilisation (< 60% means
diminishing returns) as the heuristic for choosing the cluster size.
"""

from conftest import bench_scale, bench_search_config, run_once

from repro.baselines import RealSystem
from repro.experiments import evaluate_setting, format_table, strong_scaling_settings


def run_figure17():
    gpu_counts = (8, 16, 32) if bench_scale() != "full" else (8, 16, 32, 64, 96, 128)
    rows = []
    for actor in (["7b"] if bench_scale() != "full" else ["7b", "13b", "34b"]):
        settings = strong_scaling_settings(actor, "7b", gpu_counts=gpu_counts)
        for setting in settings:
            record = evaluate_setting(
                setting, RealSystem(search_config=bench_search_config())
            )
            rows.append(
                {
                    "actor": actor.upper(),
                    "GPUs": setting.n_gpus,
                    "PFLOP/s": round(record.petaflops, 2) if record.feasible else "OOM",
                    "static mem util": round(record.extra["static_mem_util"], 3)
                    if record.extra
                    else "-",
                }
            )
    return rows


def test_figure17_strong_scaling(benchmark):
    rows = run_once(benchmark, run_figure17)
    print()
    print(format_table(rows, title="Figure 17: strong scaling and static memory utilisation"))
    by_actor = {}
    for row in rows:
        if row["PFLOP/s"] != "OOM":
            by_actor.setdefault(row["actor"], []).append(row)
    for actor, actor_rows in by_actor.items():
        throughputs = [row["PFLOP/s"] for row in actor_rows]
        utils = [row["static mem util"] for row in actor_rows]
        # Throughput grows with the cluster (strong scaling) ...
        assert throughputs[-1] > throughputs[0]
        # ... while static memory utilisation per GPU falls.
        assert utils[-1] < utils[0]
