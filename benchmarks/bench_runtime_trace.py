"""Runtime-trace simulation throughput over the shared ``repro.sim`` kernel.

Both discrete-event simulators now run on one kernel, so this benchmark
tracks the hot path they share: how fast the runtime engine simulates RLHF
iterations on the Figure 11/12 setup (PPO, 7B actor + 7B critic, 16 GPUs),
how fast a trace-driven multi-job schedule processes kernel events once the
plan cache is warm, and how fast the unified span records export to Chrome
trace JSON.  Also checked, every run: the engine is deterministic (two runs
of one plan produce identical traces) and every exported trace file
validates against the Trace Event Format required keys and round-trips
through ``json.load``.

Results are written to ``BENCH_runtime_trace.json`` at the repo root
(``BENCH_runtime_trace.smoke.json`` for ``--smoke`` runs, so CI never
clobbers the committed full baseline) and compared against the committed
baseline by ``benchmarks/check_bench_regression.py``.  The exported Chrome
traces land in ``TRACE_runtime_iteration.json`` / ``TRACE_schedule.json``
(uploaded as CI artifacts).

Run standalone (``python benchmarks/bench_runtime_trace.py``; add
``--smoke`` for a seconds-long CI-friendly run) or via pytest
(``pytest benchmarks/bench_runtime_trace.py``).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Dict, Optional

from repro.algorithms import build_ppo_graph
from repro.cluster import make_cluster
from repro.core import ParallelStrategy, SearchConfig, instructgpt_workload, symmetric_plan
from repro.experiments import format_table
from repro.obs import artifact_path, machine_fingerprint
from repro.runtime import RuntimeEngine
from repro.sched import JobSpec, SchedulerConfig, schedule_trace
from repro.service import PlanService
from repro.sim import load_chrome_trace

_REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = "BENCH_runtime_trace.json"
SMOKE_OUTPUT = "BENCH_runtime_trace.smoke.json"
ITERATION_TRACE = "TRACE_runtime_iteration.json"
SCHEDULE_TRACE = "TRACE_schedule.json"


def _artifact(name: str) -> Path:
    """Artifact location: ``REPRO_ARTIFACT_DIR`` wins, else the repo root
    (the historical destination the committed baselines live at)."""
    return artifact_path(name, default_dir=_REPO_ROOT)


def figure11_setup(smoke: bool):
    """The Figure 11/12 engine setup: PPO 7B+7B on two 8-GPU nodes."""
    graph = build_ppo_graph()
    workload = instructgpt_workload(
        "7b", "7b", batch_size=128 if smoke else 512
    )
    cluster = make_cluster(16)
    plan = symmetric_plan(graph, cluster, ParallelStrategy(2, 8, 1), n_microbatches=8)
    return graph, workload, cluster, plan


def _engine_throughput(smoke: bool) -> Dict[str, float]:
    graph, workload, cluster, plan = figure11_setup(smoke)
    engine = RuntimeEngine(cluster, workload)
    reference = engine.run_iteration(graph, plan)  # warm cost-model caches

    # Determinism: a second simulation of the same plan is span-identical.
    repeat = engine.run_iteration(graph, plan)
    assert repeat.total_seconds == reference.total_seconds
    assert repeat.call_spans == reference.call_spans
    assert repeat.gpu_spans == reference.gpu_spans

    n_iterations = 10 if smoke else 40
    started = time.perf_counter()
    for _ in range(n_iterations):
        trace = engine.run_iteration(graph, plan)
    elapsed = time.perf_counter() - started
    n_spans = sum(len(spans) for spans in trace.gpu_spans.values())

    export_started = time.perf_counter()
    path = trace.export_chrome_trace(str(_artifact(ITERATION_TRACE)))
    export_s = time.perf_counter() - export_started
    events = load_chrome_trace(path)

    return {
        "engine_iterations_per_sec": n_iterations / elapsed,
        "engine_spans_per_iteration": float(n_spans),
        "engine_spans_per_sec": n_iterations * n_spans / elapsed,
        "chrome_export_events": float(len(events)),
        "chrome_export_events_per_sec": len(events) / export_s,
        "iteration_seconds_simulated": trace.total_seconds,
    }


def _schedule_events_rate(
    smoke: bool,
    n_jobs: Optional[int] = None,
    n_gpus: Optional[int] = None,
    horizon_s: Optional[float] = None,
) -> Dict[str, float]:
    """Kernel events/sec of a cache-warm trace-driven schedule.

    The first run pays the plan searches and engine profiles; the second run
    reuses the shared service cache and measures the event loop itself.  Any
    of the ``--jobs/--gpus/--horizon`` scale flags switches the scenario from
    the legacy hand-rolled job list to a synthetic fleet trace
    (:mod:`repro.capacity.fleet`) under the fleet scheduler preset, so one
    harness drives both the small golden scenario and fleet-scale runs.
    """
    scaled = n_jobs is not None or n_gpus is not None or horizon_s is not None
    if scaled:
        from repro.capacity import (
            FleetTraceConfig,
            fleet_scheduler_config,
            generate_fleet_trace,
        )

        jobs = generate_fleet_trace(
            FleetTraceConfig(
                n_jobs=n_jobs if n_jobs is not None else 100,
                horizon_s=horizon_s if horizon_s is not None else 7200.0,
                seed=7,
            )
        )
        cluster = make_cluster(n_gpus if n_gpus is not None else 256)
        config = fleet_scheduler_config()
    else:
        jobs = [
            JobSpec(
                name=f"job-{i}",
                algorithm="grpo" if i % 2 else "ppo",
                batch_size=64,
                target_iterations=4 if smoke else 12,
                min_gpus=8,
                max_gpus=16,
            )
            for i in range(4 if smoke else 8)
        ]
        cluster = make_cluster(32 if smoke else 64)
        config = SchedulerConfig(
            search=SearchConfig(
                max_iterations=60 if smoke else 200,
                time_budget_s=1.0,
                record_history=False,
            )
        )
    with PlanService(max_workers=4, estimator_cache_size=32) as service:
        schedule_trace(cluster, jobs, policy="first_fit", config=config, service=service)
        started = time.perf_counter()
        report = schedule_trace(
            cluster,
            jobs,
            policy="first_fit",
            config=config,
            service=service,
            trace_path=str(_artifact(SCHEDULE_TRACE)),
        )
        warm_s = time.perf_counter() - started
    events = load_chrome_trace(report.trace_path)
    assert report.all_completed, "benchmark schedule left jobs incomplete"
    assert report.n_events > 0
    return {
        "schedule_kernel_events": float(report.n_events),
        "schedule_events_per_sec": report.n_events / warm_s,
        "schedule_engine_profiles": float(report.engine_profile_runs),
        "schedule_chrome_events": float(len(events)),
        "schedule_warm_wall_s": warm_s,
    }


def _metric(value: float, higher_is_better: bool) -> Dict[str, object]:
    return {"value": value, "higher_is_better": higher_is_better}


def run_benchmark(
    smoke: bool = False,
    n_jobs: Optional[int] = None,
    n_gpus: Optional[int] = None,
    horizon_s: Optional[float] = None,
) -> Dict[str, object]:
    engine = _engine_throughput(smoke)
    schedule = _schedule_events_rate(smoke, n_jobs=n_jobs, n_gpus=n_gpus, horizon_s=horizon_s)
    return {
        "benchmark": "runtime_trace",
        "mode": "smoke" if smoke else "full",
        "setup": "Figure 11/12 engine setup (PPO 7B+7B, 16 GPUs) + warm 4-8 job schedule",
        "machine": machine_fingerprint(),
        "details": {**engine, **schedule},
        "metrics": {
            "engine_iterations_per_sec": _metric(engine["engine_iterations_per_sec"], True),
            "engine_spans_per_sec": _metric(engine["engine_spans_per_sec"], True),
            "chrome_export_events_per_sec": _metric(
                engine["chrome_export_events_per_sec"], True
            ),
            "schedule_events_per_sec": _metric(schedule["schedule_events_per_sec"], True),
        },
    }


def _check(report: Dict[str, object]) -> None:
    metrics = report["metrics"]
    assert metrics["engine_iterations_per_sec"]["value"] > 0
    assert metrics["schedule_events_per_sec"]["value"] > 0
    details = report["details"]
    assert details["chrome_export_events"] > 0
    assert details["schedule_chrome_events"] > 0


def _print(report: Dict[str, object]) -> None:
    details = report["details"]
    rows = [
        {"metric": "engine iterations simulated / s",
         "value": round(details["engine_iterations_per_sec"], 1)},
        {"metric": "engine spans recorded / s",
         "value": round(details["engine_spans_per_sec"])},
        {"metric": "chrome events exported / s",
         "value": round(details["chrome_export_events_per_sec"])},
        {"metric": "scheduler kernel events / s (warm)",
         "value": round(details["schedule_events_per_sec"], 1)},
        {"metric": "engine profiles behind the schedule",
         "value": round(details["schedule_engine_profiles"])},
    ]
    print()
    print(format_table(rows, title=f"Runtime trace throughput ({report['mode']})"))
    print(f"iteration trace: {ITERATION_TRACE}, schedule trace: {SCHEDULE_TRACE}")


def write_report(report: Dict[str, object], path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")


def test_runtime_trace(benchmark):
    from conftest import run_once

    report = run_once(benchmark, run_benchmark, smoke=True)
    _check(report)
    _print(report)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-long CI run: smaller batch, fewer iterations and jobs",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=(
            "where to write the JSON report (default: "
            f"{DEFAULT_OUTPUT} for full runs, {SMOKE_OUTPUT} for --smoke runs "
            "— smoke numbers never overwrite the committed full baseline)"
        ),
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="scale mode: replay a synthetic fleet trace with this many jobs",
    )
    parser.add_argument(
        "--gpus",
        type=int,
        default=None,
        help="scale mode: cluster size in GPUs for the schedule scenario",
    )
    parser.add_argument(
        "--horizon",
        type=float,
        default=None,
        help="scale mode: fleet trace arrival horizon in seconds",
    )
    args = parser.parse_args(argv)
    output = args.output
    if output is None:
        output = _artifact(SMOKE_OUTPUT if args.smoke else DEFAULT_OUTPUT)
    report = run_benchmark(
        smoke=args.smoke, n_jobs=args.jobs, n_gpus=args.gpus, horizon_s=args.horizon
    )
    _print(report)
    _check(report)
    write_report(report, output)
    _write_metrics_snapshot(output, report)
    rate = report["metrics"]["engine_iterations_per_sec"]["value"]
    print(f"\nOK: {rate:.1f} engine iterations simulated per second, traces exported")
    return 0


def _write_metrics_snapshot(bench_output: Path, report: Dict[str, object]) -> None:
    """Dump the live telemetry registry next to the benchmark report
    (``METRICS_runtime_trace[.smoke].json``, uploaded as a CI artifact)."""
    from repro.obs import get_registry, write_metrics_snapshot

    registry = get_registry()
    if not registry.enabled:
        return
    path = bench_output.with_name(
        bench_output.name.replace("BENCH_", "METRICS_", 1)
    )
    write_metrics_snapshot(
        registry, path, extra={"benchmark": report["benchmark"], "mode": report["mode"]}
    )
    print(f"wrote {path}")


if __name__ == "__main__":
    raise SystemExit(main())
