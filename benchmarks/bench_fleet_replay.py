"""Fleet-scale trace replay throughput and the capacity what-if grid.

The planning-product north star needs thousand-job, multi-thousand-GPU
traces to replay in seconds.  This benchmark drives that path end to end:

* generate a synthetic fleet trace (``repro.capacity.fleet``: Poisson
  arrivals with diurnal load over a recurring job-type mix),
* replay it twice on one shared :class:`PlanService` — the first run pays
  the cold plan searches, the second measures the scheduler event loop
  itself (``schedule_events_per_sec``) with the fleet preset (timeline off,
  throttled counters, candidate memo on),
* export the warm run's merged Chrome trace *sampled* (``REPRO_TRACE_SAMPLE``
  + ``REPRO_TRACE_MAX_EVENTS``), so even fleet traces stay loadable,
* replay the same trace against a grid of cluster shapes × policies through
  :func:`repro.capacity.whatif.capacity_whatif` and write the machine-
  readable cost/throughput frontier (``CAPACITY_fleet_frontier[.smoke].json``).

The headline metric is ``speedup_vs_runtime_trace``: warm fleet events/sec
over the committed small-scenario ``BENCH_runtime_trace.json`` baseline —
the 10x acceptance bar of the fleet-replay work.

Results land in ``BENCH_fleet_replay.json`` (``.smoke.json`` under
``--smoke``); compare with ``benchmarks/check_bench_regression.py``.  Scale
flags ``--jobs/--gpus/--horizon`` size the full mode explicitly.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.capacity import (
    CapacityCandidate,
    FleetTraceConfig,
    capacity_whatif,
    fleet_scheduler_config,
    generate_fleet_trace,
)
from repro.cluster import make_cluster
from repro.experiments import format_table
from repro.obs import artifact_path, machine_fingerprint
from repro.sched.scheduler import ClusterScheduler
from repro.service import PlanService
from repro.sim import load_chrome_trace

_REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = "BENCH_fleet_replay.json"
SMOKE_OUTPUT = "BENCH_fleet_replay.smoke.json"
FLEET_TRACE = "TRACE_fleet_replay.json"
FRONTIER_REPORT = "CAPACITY_fleet_frontier.json"
SMOKE_FRONTIER_REPORT = "CAPACITY_fleet_frontier.smoke.json"
RUNTIME_TRACE_BASELINE = "BENCH_runtime_trace.json"

# Sampled trace-export knobs for the fleet trace (set only during export).
_TRACE_SAMPLE = "0.05"
_TRACE_MAX_EVENTS = "20000"


def fleet_setup(
    smoke: bool,
    n_jobs: Optional[int] = None,
    n_gpus: Optional[int] = None,
    horizon_s: Optional[float] = None,
):
    """The fleet scenario: trace config + cluster size, overridable by flags."""
    if n_jobs is None:
        n_jobs = 40 if smoke else 1200
    if n_gpus is None:
        n_gpus = 128 if smoke else 2048
    if horizon_s is None:
        horizon_s = 3600.0 if smoke else 21600.0
    trace_config = FleetTraceConfig(n_jobs=n_jobs, horizon_s=horizon_s, seed=7)
    return trace_config, n_gpus


def _artifact(name: str) -> Path:
    return artifact_path(name, default_dir=_REPO_ROOT)


def _baseline_events_per_sec() -> Optional[float]:
    """``schedule_events_per_sec`` of the committed small-scenario baseline."""
    path = _REPO_ROOT / RUNTIME_TRACE_BASELINE
    if not path.exists():
        return None
    try:
        report = json.loads(path.read_text())
        return float(report["metrics"]["schedule_events_per_sec"]["value"])
    except (ValueError, KeyError, TypeError):
        return None


def _export_sampled_trace(scheduler: ClusterScheduler) -> Dict[str, float]:
    """Export the merged Chrome trace with fleet sampling knobs engaged."""
    saved = {
        key: os.environ.get(key)
        for key in ("REPRO_TRACE_SAMPLE", "REPRO_TRACE_MAX_EVENTS")
    }
    os.environ["REPRO_TRACE_SAMPLE"] = _TRACE_SAMPLE
    os.environ["REPRO_TRACE_MAX_EVENTS"] = _TRACE_MAX_EVENTS
    started = time.perf_counter()
    try:
        path = scheduler.export_chrome_trace(str(_artifact(FLEET_TRACE)))
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    export_s = time.perf_counter() - started
    events = load_chrome_trace(path)
    return {
        "sampled_trace_events": float(len(events)),
        "trace_export_s": export_s,
    }


def _fleet_replay(
    smoke: bool,
    n_jobs: Optional[int] = None,
    n_gpus: Optional[int] = None,
    horizon_s: Optional[float] = None,
) -> Dict[str, float]:
    """Cold + warm replay of the fleet trace; the warm run is the metric."""
    trace_config, cluster_gpus = fleet_setup(smoke, n_jobs, n_gpus, horizon_s)
    jobs = generate_fleet_trace(trace_config)
    cluster = make_cluster(cluster_gpus)
    config = fleet_scheduler_config()
    with PlanService(max_workers=4, estimator_cache_size=64) as service:
        cold_started = time.perf_counter()
        ClusterScheduler(
            cluster, jobs, policy="first_fit", config=config, service=service
        ).run()
        cold_s = time.perf_counter() - cold_started
        warm_scheduler = ClusterScheduler(
            cluster, jobs, policy="first_fit", config=config, service=service
        )
        warm_started = time.perf_counter()
        report = warm_scheduler.run()
        warm_s = time.perf_counter() - warm_started
        trace_stats = _export_sampled_trace(warm_scheduler)
    assert report.n_events > 0
    assert report.all_completed, "fleet replay left jobs incomplete"
    # Parity: the incremental per-event aggregation must reproduce the legacy
    # end-of-run scans bit for bit, even on the fleet-sized run.
    assert report.to_dict() == warm_scheduler.legacy_report().to_dict()
    out = {
        "fleet_jobs": float(len(jobs)),
        "fleet_cluster_gpus": float(cluster_gpus),
        "fleet_horizon_s": trace_config.horizon_s,
        "fleet_kernel_events": float(report.n_events),
        "fleet_makespan_s": report.makespan,
        "fleet_total_iterations": report.total_iterations,
        "cold_wall_s": cold_s,
        "warm_wall_s": warm_s,
        "schedule_events_per_sec": report.n_events / warm_s,
        **trace_stats,
    }
    baseline = _baseline_events_per_sec()
    if baseline is not None and baseline > 0:
        out["baseline_events_per_sec"] = baseline
        out["speedup_vs_runtime_trace"] = out["schedule_events_per_sec"] / baseline
    return out


def _grid_candidates(smoke: bool, n_gpus: int) -> List[CapacityCandidate]:
    """Six cluster-shape × policy candidates around the replay cluster."""
    sizes = (
        [max(32, n_gpus // 4), n_gpus // 2, n_gpus]
        if n_gpus >= 64
        else [n_gpus, n_gpus, n_gpus]
    )
    rate = 2.0
    return [
        CapacityCandidate(
            name=f"{sizes[0]}g-ff", n_gpus=sizes[0], policy="first_fit",
            cost_per_gpu_hour=rate,
        ),
        CapacityCandidate(
            name=f"{sizes[1]}g-ff", n_gpus=sizes[1], policy="first_fit",
            cost_per_gpu_hour=rate,
        ),
        CapacityCandidate(
            name=f"{sizes[1]}g-bt", n_gpus=sizes[1], policy="best_throughput",
            cost_per_gpu_hour=rate,
        ),
        CapacityCandidate(
            name=f"{sizes[2]}g-ff", n_gpus=sizes[2], policy="first_fit",
            cost_per_gpu_hour=rate,
        ),
        CapacityCandidate(
            name=f"{sizes[2]}g-bt", n_gpus=sizes[2], policy="best_throughput",
            cost_per_gpu_hour=rate,
        ),
        CapacityCandidate(
            name=f"{sizes[2]}g-spot", n_gpus=sizes[2], policy="first_fit",
            cost_per_gpu_hour=rate * 0.6,
        ),
    ]


def _capacity_grid(
    smoke: bool,
    n_jobs: Optional[int] = None,
    n_gpus: Optional[int] = None,
    horizon_s: Optional[float] = None,
) -> Dict[str, float]:
    """Replay one (smaller) trace against the what-if grid; write the report."""
    trace_config, cluster_gpus = fleet_setup(smoke, n_jobs, n_gpus, horizon_s)
    # The grid replays the trace once per candidate; a quarter-sized trace
    # keeps the full grid to tens of seconds while still exercising every
    # candidate with hundreds of jobs.
    grid_trace = FleetTraceConfig(
        n_jobs=max(10, trace_config.n_jobs // 4),
        horizon_s=trace_config.horizon_s,
        seed=trace_config.seed,
    )
    jobs = generate_fleet_trace(grid_trace)
    candidates = _grid_candidates(smoke, cluster_gpus)
    started = time.perf_counter()
    report = capacity_whatif(jobs, candidates, config=fleet_scheduler_config())
    grid_s = time.perf_counter() - started
    out_path = _artifact(SMOKE_FRONTIER_REPORT if smoke else FRONTIER_REPORT)
    report.save(out_path)
    print(f"wrote {out_path}")
    assert len(report.outcomes) >= 6
    assert report.frontier, "capacity grid produced an empty frontier"
    warm = report.outcomes[1:]
    return {
        "capacity_candidates": float(len(report.outcomes)),
        "capacity_frontier_size": float(len(report.frontier)),
        "capacity_grid_wall_s": grid_s,
        "capacity_grid_jobs": float(len(jobs)),
        "capacity_warm_events_per_sec": (
            sum(o.events_per_sec for o in warm) / len(warm) if warm else 0.0
        ),
    }


def _metric(value: float, higher_is_better: bool) -> Dict[str, object]:
    return {"value": value, "higher_is_better": higher_is_better}


def run_benchmark(
    smoke: bool = False,
    n_jobs: Optional[int] = None,
    n_gpus: Optional[int] = None,
    horizon_s: Optional[float] = None,
) -> Dict[str, object]:
    replay = _fleet_replay(smoke, n_jobs, n_gpus, horizon_s)
    grid = _capacity_grid(smoke, n_jobs, n_gpus, horizon_s)
    metrics = {
        "schedule_events_per_sec": _metric(replay["schedule_events_per_sec"], True),
        "capacity_warm_events_per_sec": _metric(
            grid["capacity_warm_events_per_sec"], True
        ),
        "warm_wall_s": _metric(replay["warm_wall_s"], False),
    }
    if "speedup_vs_runtime_trace" in replay:
        metrics["speedup_vs_runtime_trace"] = _metric(
            replay["speedup_vs_runtime_trace"], True
        )
    return {
        "benchmark": "fleet_replay",
        "mode": "smoke" if smoke else "full",
        "setup": (
            f"{int(replay['fleet_jobs'])} jobs / "
            f"{int(replay['fleet_cluster_gpus'])} GPUs fleet trace "
            f"(Poisson + diurnal, seed 7) + 6-candidate capacity grid"
        ),
        "machine": machine_fingerprint(),
        "details": {**replay, **grid},
        "metrics": metrics,
    }


def _check(report: Dict[str, object]) -> None:
    details = report["details"]
    metrics = report["metrics"]
    assert metrics["schedule_events_per_sec"]["value"] > 0
    assert details["sampled_trace_events"] > 0
    assert details["capacity_frontier_size"] >= 1
    if report["mode"] == "full":
        # The fleet acceptance bar: >= 10x the committed small-scenario
        # baseline on a >= 1,000-job / >= 2,048-GPU trace.
        assert details["fleet_jobs"] >= 1000 and details["fleet_cluster_gpus"] >= 2048
        speedup = metrics.get("speedup_vs_runtime_trace")
        assert speedup is not None, f"missing {RUNTIME_TRACE_BASELINE} baseline"
        assert speedup["value"] >= 10.0, (
            f"fleet replay speedup {speedup['value']:.1f}x < 10x baseline"
        )


def _print(report: Dict[str, object]) -> None:
    details = report["details"]
    rows = [
        {"metric": "fleet kernel events", "value": round(details["fleet_kernel_events"])},
        {"metric": "warm replay wall (s)", "value": round(details["warm_wall_s"], 2)},
        {"metric": "scheduler events / s (warm)",
         "value": round(details["schedule_events_per_sec"])},
        {"metric": "speedup vs runtime_trace baseline",
         "value": round(details.get("speedup_vs_runtime_trace", 0.0), 1)},
        {"metric": "sampled chrome events", "value": round(details["sampled_trace_events"])},
        {"metric": "capacity grid wall (s)", "value": round(details["capacity_grid_wall_s"], 1)},
        {"metric": "capacity frontier size",
         "value": round(details["capacity_frontier_size"])},
    ]
    print()
    print(format_table(rows, title=f"Fleet replay throughput ({report['mode']})"))
    print(f"fleet trace: {FLEET_TRACE}, frontier: "
          f"{SMOKE_FRONTIER_REPORT if report['mode'] == 'smoke' else FRONTIER_REPORT}")


def write_report(report: Dict[str, object], path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")


def test_fleet_replay(benchmark):
    from conftest import run_once

    report = run_once(benchmark, run_benchmark, smoke=True)
    _check(report)
    _print(report)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-long CI run: tens of jobs on a 128-GPU cluster",
    )
    parser.add_argument("--jobs", type=int, default=None, help="fleet trace job count")
    parser.add_argument("--gpus", type=int, default=None, help="replay cluster GPU count")
    parser.add_argument(
        "--horizon", type=float, default=None, help="arrival window in virtual seconds"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=(
            "where to write the JSON report (default: "
            f"{DEFAULT_OUTPUT} for full runs, {SMOKE_OUTPUT} for --smoke runs)"
        ),
    )
    args = parser.parse_args(argv)
    output = args.output
    if output is None:
        output = _artifact(SMOKE_OUTPUT if args.smoke else DEFAULT_OUTPUT)
    report = run_benchmark(
        smoke=args.smoke, n_jobs=args.jobs, n_gpus=args.gpus, horizon_s=args.horizon
    )
    _print(report)
    _check(report)
    write_report(report, output)
    _write_metrics_snapshot(output, report)
    rate = report["metrics"]["schedule_events_per_sec"]["value"]
    print(f"\nOK: {rate:.0f} scheduler events per second on the fleet trace")
    return 0


def _write_metrics_snapshot(bench_output: Path, report: Dict[str, object]) -> None:
    """Dump the live telemetry registry next to the benchmark report."""
    from repro.obs import get_registry, write_metrics_snapshot

    registry = get_registry()
    if not registry.enabled:
        return
    path = bench_output.with_name(bench_output.name.replace("BENCH_", "METRICS_", 1))
    write_metrics_snapshot(
        registry, path, extra={"benchmark": report["benchmark"], "mode": report["mode"]}
    )
    print(f"wrote {path}")


if __name__ == "__main__":
    raise SystemExit(main())
