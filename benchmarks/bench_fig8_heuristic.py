"""Figure 8: throughput of ReaL vs ReaL-Heuristic at context 2048 and 8192.

Expected shape: the searched plans beat the symmetric Megatron-style heuristic
everywhere, and the advantage grows with the longer context (the paper reports
+54% on average at 2048 tokens and up to +81% at 8192).
"""

from conftest import bench_scale, bench_search_config, run_once

from repro.experiments import figure8_settings, format_table, run_heuristic_comparison


def run_figure8():
    rows = []
    speedups = {2048: [], 8192: []}
    for context_len in (2048, 8192):
        settings = figure8_settings(context_len)
        if bench_scale() != "full":
            settings = settings[:2]  # 7B+7B and 13B+7B
        records = run_heuristic_comparison(settings)
        by_setting = {}
        for record in records:
            by_setting.setdefault(record.setting, {})[record.system] = record
        for name, pair in by_setting.items():
            real, heur = pair.get("ReaL"), pair.get("ReaL-Heuristic")
            if real is None or heur is None or not (real.feasible and heur.feasible):
                continue
            ratio = real.petaflops / heur.petaflops
            speedups[context_len].append(ratio)
            rows.append(
                {
                    "setting": name,
                    "context": context_len,
                    "heuristic PFLOP/s": round(heur.petaflops, 2),
                    "ReaL PFLOP/s": round(real.petaflops, 2),
                    "improvement": f"{(ratio - 1) * 100:+.0f}%",
                }
            )
    return rows, speedups


def test_figure8_heuristic_comparison(benchmark):
    rows, speedups = run_once(benchmark, run_figure8)
    print()
    print(format_table(rows, title="Figure 8: ReaL vs ReaL-Heuristic throughput"))
    assert all(ratio >= 0.98 for ratios in speedups.values() for ratio in ratios)
    mean_2048 = sum(speedups[2048]) / len(speedups[2048])
    mean_8192 = sum(speedups[8192]) / len(speedups[8192])
    print(f"\nmean improvement: ctx2048 {mean_2048:.2f}x, ctx8192 {mean_8192:.2f}x")
    # ReaL's advantage does not shrink in the long-context regime.
    assert mean_8192 >= mean_2048 * 0.9
