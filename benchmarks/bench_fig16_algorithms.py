"""Figure 16: RLHF algorithms beyond PPO (DPO, GRPO, ReMax) vs the heuristic.

Any algorithm expressible as a DAG of generation/inference/training calls can
be planned by ReaL.  Expected shape: the searched plans beat the symmetric
heuristic for every algorithm; ReMax gains the most (its two generation calls
can run concurrently) while GRPO gains the least (its 8x grouped batch makes
the workload compute-bound).
"""

from conftest import bench_scale, bench_search_config, run_once

from repro.experiments import algorithm_settings, format_table, run_heuristic_comparison


def run_figure16():
    if bench_scale() == "full":
        settings = algorithm_settings(("dpo", "grpo", "remax"), "70b", "7b", n_gpus=128)
    else:
        settings = algorithm_settings(("dpo", "grpo", "remax"), "7b", "7b", n_gpus=16)
    records = run_heuristic_comparison(settings)
    rows = []
    improvements = {}
    by_setting = {}
    for record in records:
        by_setting.setdefault(record.setting, {})[record.system] = record
    for setting in settings:
        pair = by_setting[setting.name]
        real, heur = pair["ReaL"], pair["ReaL-Heuristic"]
        improvement = (real.petaflops / heur.petaflops - 1) * 100 if heur.feasible else float("inf")
        improvements[setting.algorithm] = improvement
        rows.append(
            {
                "algorithm": setting.algorithm.upper(),
                "ReaL-Heuristic PFLOP/s": round(heur.petaflops, 2),
                "ReaL PFLOP/s": round(real.petaflops, 2),
                "improvement": f"{improvement:+.1f}%",
            }
        )
    return rows, improvements


def test_figure16_algorithms_beyond_ppo(benchmark):
    rows, improvements = run_once(benchmark, run_figure16)
    print()
    print(format_table(rows, title="Figure 16: DPO / GRPO / ReMax throughput vs heuristic"))
    # The searched plan never loses to the heuristic for any algorithm.
    assert all(value >= -2.0 for value in improvements.values())
