"""Figure 2: the optimization opportunity over a 3D-parallelism execution plan.

Starting from the pre-training-inspired symmetric plan, the paper applies
ReaL's optimizations one at a time: optimizing the inference parallelization,
reallocating the critic's workloads, and reallocating the actor's workloads.
Expected shape: each step improves (or at least never hurts) end-to-end time,
and the actor reallocation (generation + training) contributes the most.
"""

from conftest import bench_scale, bench_search_config, run_once

from repro.cluster import make_cluster
from repro.core import instructgpt_workload
from repro.algorithms import build_ppo_graph
from repro.experiments import figure2_opportunity, format_table


def run_figure2():
    if bench_scale() == "full":
        cluster, workload = make_cluster(32), instructgpt_workload("13b", "7b", batch_size=1024)
    else:
        cluster, workload = make_cluster(16), instructgpt_workload("7b", "7b", batch_size=512)
    graph = build_ppo_graph()
    return figure2_opportunity(graph, workload, cluster, search_config=bench_search_config())


def test_figure2_optimization_opportunity(benchmark):
    levels = run_once(benchmark, run_figure2)
    base = levels[0].seconds_per_iteration
    rows = [
        {
            "level": level.name,
            "s/iter": round(level.seconds_per_iteration, 1),
            "improvement vs 3D": f"{(base / level.seconds_per_iteration - 1) * 100:+.0f}%",
        }
        for level in levels
    ]
    print()
    print(format_table(rows, title="Figure 2: sequential optimization opportunity"))
    # Each added optimization never makes the plan slower (small tolerance for
    # search noise), and the full ladder yields a real improvement.
    assert levels[-1].seconds_per_iteration <= base
    for earlier, later in zip(levels[:-1], levels[1:]):
        assert later.seconds_per_iteration <= earlier.seconds_per_iteration * 1.05
