"""Tables 2-5: device allocations and parallel strategies of searched/heuristic plans.

The paper lists, for the 70B+7B and 7B+7B settings, the device mesh, TP/PP/DP
degrees, micro-batch count and per-call time of both the searched and the
heuristic execution plan.  We regenerate the same tables from our search and
estimator; expected shape: the searched generation call prefers lower TP/PP
and a higher DP degree than the heuristic, and searched per-call times are
lower overall.
"""

from conftest import bench_scale, bench_search_config, run_once

from repro.algorithms import build_ppo_graph
from repro.baselines import RealSystem, build_heuristic_plan
from repro.cluster import make_cluster
from repro.core import RuntimeEstimator, instructgpt_workload
from repro.experiments import format_table


def plan_table(graph, plan, estimator):
    rows = []
    for name in graph.topological_order():
        alloc = plan[name]
        rows.append(
            {
                "call": name,
                "DeviceMesh": alloc.mesh.describe(),
                "TP": alloc.parallel.tp,
                "PP": alloc.parallel.pp,
                "DP": alloc.parallel.dp,
                "#MicroBatches": alloc.n_microbatches,
                "Time (s)": round(estimator.call_time(name, alloc), 1),
            }
        )
    return rows


def run_tables():
    graph = build_ppo_graph()
    cases = [("7B+7B (Tables 4/5)", "7b", "7b", 16, 512)]
    if bench_scale() == "full":
        cases.append(("70B+7B (Tables 2/3)", "70b", "7b", 128, 4096))
    tables = {}
    for label, actor, critic, n_gpus, batch in cases:
        workload = instructgpt_workload(actor, critic, batch_size=batch)
        cluster = make_cluster(n_gpus)
        estimator = RuntimeEstimator(graph, workload, cluster)
        searched = RealSystem(search_config=bench_search_config()).build_plan(
            graph, workload, cluster
        )
        heuristic = build_heuristic_plan(graph, workload, cluster)
        tables[label] = {
            "searched": plan_table(graph, searched, estimator),
            "heuristic": plan_table(graph, heuristic, estimator),
        }
    return tables


def test_tables2_to_5_execution_plans(benchmark):
    tables = run_once(benchmark, run_tables)
    print()
    for label, pair in tables.items():
        for kind, rows in pair.items():
            print(format_table(rows, title=f"{label} — {kind} plan"))
            print()
    for pair in tables.values():
        searched_total = sum(row["Time (s)"] for row in pair["searched"])
        heuristic_total = sum(row["Time (s)"] for row in pair["heuristic"])
        # Summed per-call time of the searched plan undercuts the heuristic's.
        assert searched_total <= heuristic_total * 1.05
        heuristic_strategies = {(r["TP"], r["PP"], r["DP"]) for r in pair["heuristic"]}
        assert len(heuristic_strategies) == 1  # symmetric by construction
