"""Figure 14: MCMC search efficiency under different pruned search-space sizes.

At very large cluster scales the raw search space exceeds 1e24 plans and MCMC
mixing degrades; the paper prunes the space (TP bounded by the node width,
meshes that tile the cluster, no obviously-OOM strategies) and shows that a
more aggressively pruned space reaches good plans faster.  We reproduce the
ablation at a reduced scale by sweeping three pruning levels.
"""

from conftest import bench_scale, bench_search_config, run_once

from repro.algorithms import build_ppo_graph
from repro.cluster import make_cluster
from repro.core import MCMCSearcher, PruneConfig, allocation_options, instructgpt_workload, search_space_size
from repro.experiments import format_table


def run_figure14():
    n_gpus = 128 if bench_scale() == "full" else 64
    actor = "70b" if bench_scale() == "full" else "34b"
    graph = build_ppo_graph()
    workload = instructgpt_workload(actor, "7b", batch_size=n_gpus * 32)
    cluster = make_cluster(n_gpus)

    prune_levels = {
        "aggressive": PruneConfig(microbatch_choices=(1, 4, 16), mesh_stride=2),
        "default": PruneConfig(),
        "loose": PruneConfig(power_of_two_meshes=False,
                             microbatch_choices=(1, 2, 4, 8, 16, 32, 64)),
    }
    rows = []
    for label, prune in prune_levels.items():
        options = allocation_options(graph, workload, cluster, prune)
        searcher = MCMCSearcher(
            graph, workload, cluster, options=options, config=bench_search_config()
        )
        result = searcher.search()
        rows.append(
            {
                "pruning": label,
                "search space": f"{search_space_size(options):.2e}",
                "iterations": result.n_iterations,
                "best/initial": round(result.improvement_ratio, 3),
                "best cost (s)": round(result.best_cost, 1),
            }
        )
    return rows


def test_figure14_pruned_search_spaces(benchmark):
    rows = run_once(benchmark, run_figure14)
    print()
    print(format_table(rows, title="Figure 14: MCMC search under different pruning levels"))
    spaces = [float(row["search space"]) for row in rows]
    assert spaces[0] < spaces[1] < spaces[2]
    # The most aggressively pruned space never yields a *worse* plan than the
    # loosest space under the same search budget.
    assert rows[0]["best cost (s)"] <= rows[2]["best cost (s)"] * 1.1
