"""Table 1: LLaMA-3 model configurations and parameter counts."""

from conftest import run_once

from repro.experiments import format_table
from repro.model import MODEL_SIZES, get_model_config


def build_table1():
    rows = []
    for size in MODEL_SIZES:
        config = get_model_config(size)
        rows.append(
            {
                "Identifier": size.upper(),
                "HiddenSize": config.hidden_size,
                "IntermediateSize": config.intermediate_size,
                "NumLayers": config.n_layers,
                "NumAttentionHeads": config.n_heads,
                "NumKVHeads": config.n_kv_heads,
                "VocabSize": config.vocab_size,
                "TotalParamCount": config.param_count(),
                "ParamCount w/o OutputEmbedding": config.param_count_no_output_embedding(),
            }
        )
    return rows


def test_table1_model_configs(benchmark):
    rows = run_once(benchmark, build_table1)
    print()
    print(format_table(rows, title="Table 1: LLaMA-3 model configurations"))
    # Exact reproduction of the paper's parameter counts.
    expected = {
        "7B": 8030261248,
        "13B": 14001525760,
        "34B": 35321028608,
        "70B": 70553706496,
    }
    for row in rows:
        assert row["TotalParamCount"] == expected[row["Identifier"]]
