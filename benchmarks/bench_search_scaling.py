"""Search scaling: parallel-chain wall-clock speedup, throughput, latency.

The paper's headline claim is that execution-plan search is cheap enough to
run *online*; this benchmark tracks how fast our search actually is and how
well it scales when the wall-clock budget is spent by several concurrent
chains instead of one.  On the Figure-13 base point (PPO, 7B actor + 7B
critic, 16 GPUs, batch 512, context 2048) it measures:

* **plans/sec** — proposal plans scored per second through the estimator's
  incremental ``cost_delta`` path (a raw random walk, no MCMC bookkeeping);
* **batch plans/sec** — the same proposal stream scored through the
  vectorized ``RuntimeEstimator.batch_cost`` kernel (one numpy sweep per
  batch), plus its speedup over the scalar path measured in the same run;
* **MCMC iters/sec** — full search-loop iterations per second (proposal +
  scoring + acceptance + bookkeeping) for a single time-budgeted chain;
* **parallel speedup** — wall-clock time of an ``n_chains=4`` search with
  chains run sequentially in-process vs. on worker processes
  (``SearchConfig.parallel``).  Every chain receives the full per-chain
  ``time_budget_s``, so the sequential baseline pays ``4x`` the budget while
  the process pool overlaps the chains; the speedup is the scheduling win,
  independent of result quality;
* **determinism** — an iteration-bounded ``n_chains=4`` search must produce
  *bit-identical* best plans/costs in both execution modes (same seeds);
* **scheduler decision latency** — wall-clock seconds one scheduling
  decision spends costing its candidate wave through the plan service
  (cold, then fully cached).

Results are written to ``BENCH_search_scaling.json`` at the repo root; the
committed copy is the perf baseline every future PR is compared against
(see ``benchmarks/check_bench_regression.py`` and the CI workflow).

Run standalone (``python benchmarks/bench_search_scaling.py``; add
``--smoke`` for a seconds-long CI-friendly run) or via pytest
(``pytest benchmarks/bench_search_scaling.py``).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import time
from pathlib import Path
from typing import Dict, Optional

from bench_estimator_throughput import _eval_rate_delta, _random_moves, figure13_setup

from repro.core import (
    CoreBudget,
    MCMCSearcher,
    RuntimeEstimator,
    SearchConfig,
    allocation_options,
)
from repro.experiments import format_table
from repro.obs import artifact_path, machine_fingerprint

_REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = "BENCH_search_scaling.json"
SMOKE_OUTPUT = "BENCH_search_scaling.smoke.json"


def _artifact(name: str) -> Path:
    """Artifact location: ``REPRO_ARTIFACT_DIR`` wins, else the repo root
    (the historical destination the committed baselines live at)."""
    return artifact_path(name, default_dir=_REPO_ROOT)

N_CHAINS = 4
FULL_SPEEDUP_TARGET = 3.0
SMOKE_SPEEDUP_TARGET = 1.8
FULL_BATCH_SPEEDUP_TARGET = 3.0
SMOKE_BATCH_SPEEDUP_TARGET = 1.5


def _metric(value: float, higher_is_better: bool) -> Dict[str, object]:
    return {"value": value, "higher_is_better": higher_is_better}


def _throughput(graph, workload, cluster, options, smoke: bool) -> Dict[str, float]:
    """plans/sec through cost_delta and iters/sec through the search loop."""
    estimator = RuntimeEstimator(graph, workload, cluster)
    searcher = MCMCSearcher(graph, workload, cluster, estimator=estimator, options=options)
    plan = searcher.greedy_initial_plan()
    n_moves = 1000 if smoke else 5000
    _eval_rate_delta(estimator, plan, _random_moves(graph, options, n_moves, seed=2))
    plans_per_sec = sorted(
        _eval_rate_delta(
            estimator, plan, _random_moves(graph, options, n_moves, seed=20 + rep)
        )
        for rep in range(3)
    )[1]

    budget_s = 0.5 if smoke else 2.0
    config = SearchConfig(
        max_iterations=10**9, time_budget_s=budget_s, seed=0, record_history=False
    )
    result = MCMCSearcher(
        graph, workload, cluster, estimator=estimator, options=options, config=config
    ).search()
    iters_per_sec = result.n_iterations / max(result.elapsed_seconds, 1e-9)
    return {"plans_per_sec": plans_per_sec, "mcmc_iters_per_sec": iters_per_sec}


def _batch_throughput(
    graph, workload, cluster, options, scalar_plans_per_sec: float, smoke: bool
) -> Dict[str, float]:
    """plans/sec through the vectorized ``batch_cost`` kernel.

    Same proposal distribution as the scalar walk, scored one whole batch
    per numpy sweep; the lookup tables are primed and the lazy realloc
    cells warmed outside the timed region (steady-state kernel rate, which
    is what the batched ``advance_chain`` sweeps see).  The speedup metric
    divides by the scalar rate measured in the *same run*, so it stays
    comparable across machines of different absolute speed.
    """
    estimator = RuntimeEstimator(graph, workload, cluster)
    searcher = MCMCSearcher(
        graph, workload, cluster, estimator=estimator, options=options
    )
    plan = searcher.greedy_initial_plan()
    estimator.batch_state(options)
    batch = 1024 if smoke else 4096
    estimator.batch_cost(
        base_plan=plan, moves=_random_moves(graph, options, batch, seed=2)
    )
    rates = []
    for rep in range(3):
        moves = _random_moves(graph, options, batch, seed=20 + rep)
        started = time.perf_counter()
        estimator.batch_cost(base_plan=plan, moves=moves)
        rates.append(batch / max(time.perf_counter() - started, 1e-9))
    batch_rate = sorted(rates)[1]
    return {
        "batch_plans_per_sec": batch_rate,
        "batch_size": float(batch),
        "batch_speedup_vs_scalar": batch_rate / max(scalar_plans_per_sec, 1e-9),
    }


def _parallel_speedup(graph, workload, cluster, options, smoke: bool) -> Dict[str, float]:
    """Wall-clock of n_chains=4, sequential vs process-parallel execution.

    Time-budget-bound on purpose: each chain owns the full ``time_budget_s``,
    so the sequential baseline's wall time is the per-chain budget summed
    while worker processes overlap it.  ``parallel="process"`` forces the
    pool even on a busy/small machine — the point is to measure the scaling
    machinery itself (CI runners and laptops differ; that is what the
    fail-soft regression check is for).
    """
    budget_s = 0.75 if smoke else 2.5
    base = SearchConfig(
        max_iterations=10**9,
        time_budget_s=budget_s,
        seed=0,
        n_chains=N_CHAINS,
        record_history=False,
        parallel="off",
    )
    estimator = RuntimeEstimator(graph, workload, cluster)
    sequential = MCMCSearcher(
        graph, workload, cluster, estimator=estimator, options=options, config=base
    ).search()
    forced = dataclasses.replace(base, parallel="process")
    parallel = MCMCSearcher(
        graph, workload, cluster, estimator=estimator, options=options,
        config=forced, core_budget=CoreBudget(total=max(N_CHAINS, os.cpu_count() or 1)),
    ).search()
    available = parallel.execution_mode == "process"
    return {
        "parallel_available": available,
        "sequential_wall_s": sequential.elapsed_seconds,
        "parallel_wall_s": parallel.elapsed_seconds,
        "parallel_speedup": (
            sequential.elapsed_seconds / parallel.elapsed_seconds if available else 0.0
        ),
        "sequential_cpu_s": sequential.cpu_seconds,
        "parallel_cpu_s": parallel.cpu_seconds,
        "parallel_workers": parallel.n_workers,
        "chain_budget_s": budget_s,
        # Worker-side throughput: time-budget-bound chains make the wall
        # speedup insensitive to per-iteration regressions (chains stop at
        # the deadline no matter how much they got done), so the iteration
        # rates of both modes are tracked as their own metrics.
        "sequential_iters_per_sec": (
            sequential.n_iterations / max(sequential.elapsed_seconds, 1e-9)
        ),
        "parallel_iters_per_sec": (
            parallel.n_iterations / max(parallel.elapsed_seconds, 1e-9)
            if available
            else 0.0
        ),
    }


def _determinism(graph, workload, cluster, options, smoke: bool) -> Dict[str, object]:
    """Iteration-bounded n_chains=4: both modes must agree bit-for-bit."""
    config = SearchConfig(
        max_iterations=400 if smoke else 1600,
        time_budget_s=120.0,
        seed=0,
        n_chains=N_CHAINS,
        record_history=False,
        parallel="off",
    )
    estimator = RuntimeEstimator(graph, workload, cluster)
    sequential = MCMCSearcher(
        graph, workload, cluster, estimator=estimator, options=options, config=config
    ).search()
    parallel = MCMCSearcher(
        graph, workload, cluster, estimator=estimator, options=options,
        config=dataclasses.replace(config, parallel="process"),
    ).search()
    pool_ran = parallel.execution_mode == "process"
    identical = pool_ran and (
        parallel.best_cost == sequential.best_cost
        and parallel.best_plan.to_dict() == sequential.best_plan.to_dict()
        and parallel.n_iterations == sequential.n_iterations
    )
    return {
        # Kept separate so _check can tell "the pool never ran" (an
        # environment problem, fail-soft in smoke mode) apart from "the
        # costs actually diverged" (a correctness bug, always fatal).
        "determinism_pool_ran": pool_ran,
        "deterministic": identical,
        "best_cost": sequential.best_cost,
        "parallel_mode": parallel.execution_mode,
    }


def _scheduler_latency(smoke: bool) -> Dict[str, float]:
    """Decision latency: one candidate wave, cold then fully cached."""
    from repro.cluster import make_cluster
    from repro.sched import Job, JobSpec, PartitionManager, PlanCosting
    from repro.service import PlanService

    cluster = make_cluster(32 if smoke else 64)
    manager = PartitionManager(cluster)
    search = SearchConfig(
        max_iterations=60 if smoke else 250,
        time_budget_s=1.0 if smoke else 4.0,
        record_history=False,
    )
    jobs = [
        Job.from_spec(
            JobSpec(
                name=f"job-{i}",
                algorithm="grpo" if i % 2 else "ppo",
                batch_size=128 if i % 2 else 256,
                target_iterations=10,
                min_gpus=8,
                max_gpus=32,
            )
        )
        for i in range(4)
    ]
    with PlanService(max_workers=4, estimator_cache_size=32) as service:
        costing = PlanCosting(service, search=search, replan_search=search)
        pairs = []
        for job in jobs:
            shapes = manager.distinct_shapes(job.spec.min_gpus, job.spec.gpu_ceiling)
            pairs.extend((job, shape) for shape in shapes)
        started = time.perf_counter()
        costing.score(pairs)
        cold_s = time.perf_counter() - started
        started = time.perf_counter()
        costing.score(pairs)
        cached_s = time.perf_counter() - started
        waves = costing.wave_stats
    return {
        "decision_candidates": float(len(pairs)),
        "decision_latency_cold_s": cold_s,
        "decision_latency_cached_s": cached_s,
        "decision_waves": float(waves["waves"]),
    }


def run_benchmark(smoke: bool = False) -> Dict[str, object]:
    graph, workload, cluster = figure13_setup()
    options = allocation_options(graph, workload, cluster)

    throughput = _throughput(graph, workload, cluster, options, smoke)
    batch = _batch_throughput(
        graph, workload, cluster, options, throughput["plans_per_sec"], smoke
    )
    scaling = _parallel_speedup(graph, workload, cluster, options, smoke)
    determinism = _determinism(graph, workload, cluster, options, smoke)
    latency = _scheduler_latency(smoke)

    report = {
        "benchmark": "search_scaling",
        "mode": "smoke" if smoke else "full",
        "setup": "Figure-13 base point: PPO 7B+7B, 16 GPUs, batch 512, ctx 2048",
        "machine": machine_fingerprint(),
        "config": {
            "n_chains": N_CHAINS,
            "chain_budget_s": scaling["chain_budget_s"],
            "batch_size": batch["batch_size"],
        },
        "metrics": {
            "plans_per_sec": _metric(throughput["plans_per_sec"], True),
            "batch_plans_per_sec": _metric(batch["batch_plans_per_sec"], True),
            "batch_speedup_vs_scalar": _metric(
                batch["batch_speedup_vs_scalar"], True
            ),
            "mcmc_iters_per_sec": _metric(throughput["mcmc_iters_per_sec"], True),
            "parallel_speedup_n4": _metric(scaling["parallel_speedup"], True),
            "sequential_iters_per_sec": _metric(
                scaling["sequential_iters_per_sec"], True
            ),
            "parallel_iters_per_sec": _metric(scaling["parallel_iters_per_sec"], True),
            "scheduler_decision_latency_s": _metric(
                latency["decision_latency_cold_s"], False
            ),
            "scheduler_cached_decision_latency_s": _metric(
                latency["decision_latency_cached_s"], False
            ),
        },
        "details": {**batch, **scaling, **determinism, **latency},
    }
    return report


def _check(report: Dict[str, object], smoke: bool) -> None:
    """Validate the run.  Smoke runs are fail-soft on machine-dependent
    numbers (CI runners vary); the determinism invariant is machine-
    independent and always enforced when a pool actually ran."""
    details = report["details"]
    if not details["parallel_available"]:
        message = (
            "process pool unavailable in this environment: parallel scaling "
            "not measured"
        )
        if smoke:
            print(f"WARNING: {message}")
            return
        raise RuntimeError(message)
    if not details["determinism_pool_ran"]:
        # The pool worked for the speedup run but failed transiently here:
        # an environment problem, not a correctness verdict.
        message = "process pool failed during the determinism experiment"
        if smoke:
            print(f"WARNING: {message}")
            return
        raise RuntimeError(message)
    assert details["deterministic"] is True, (
        "parallel and sequential chains diverged for the same seeds — "
        "the bit-identical invariant is broken"
    )
    speedup = report["metrics"]["parallel_speedup_n4"]["value"]
    target = SMOKE_SPEEDUP_TARGET if smoke else FULL_SPEEDUP_TARGET
    if speedup < target:
        message = (
            f"n_chains={N_CHAINS} parallel search is only {speedup:.2f}x the "
            f"sequential wall clock, expected >= {target}x"
        )
        if smoke:
            # Fail-soft on shared/loaded CI machines; the committed full-run
            # baseline plus check_bench_regression.py track the trajectory.
            print(f"WARNING: {message}")
        else:
            raise AssertionError(message)
    batch_speedup = report["metrics"]["batch_speedup_vs_scalar"]["value"]
    batch_target = SMOKE_BATCH_SPEEDUP_TARGET if smoke else FULL_BATCH_SPEEDUP_TARGET
    if batch_speedup < batch_target:
        message = (
            f"batch kernel is only {batch_speedup:.2f}x the scalar cost_delta "
            f"rate, expected >= {batch_target}x"
        )
        if smoke:
            print(f"WARNING: {message}")
        else:
            raise AssertionError(message)


def _print(report: Dict[str, object]) -> None:
    metrics = report["metrics"]
    details = report["details"]
    rows = [
        {"metric": "plans/sec (cost_delta walk)",
         "value": round(metrics["plans_per_sec"]["value"])},
        {"metric": f"plans/sec (batch kernel, B={round(details['batch_size'])})",
         "value": round(metrics["batch_plans_per_sec"]["value"])},
        {"metric": "batch kernel speedup vs scalar",
         "value": f"{metrics['batch_speedup_vs_scalar']['value']:.2f}x"},
        {"metric": "MCMC iters/sec (1 chain)",
         "value": round(metrics["mcmc_iters_per_sec"]["value"])},
        {"metric": f"sequential wall, {N_CHAINS} chains (s)",
         "value": round(details["sequential_wall_s"], 2)},
        {"metric": f"parallel wall, {N_CHAINS} chains (s)",
         "value": round(details["parallel_wall_s"], 2)},
        {"metric": f"parallel speedup @ n_chains={N_CHAINS}",
         "value": f"{metrics['parallel_speedup_n4']['value']:.2f}x"},
        {"metric": "parallel == sequential plans",
         "value": str(details["deterministic"])},
        {"metric": "scheduler decision latency, cold (s)",
         "value": round(details["decision_latency_cold_s"], 3)},
        {"metric": "scheduler decision latency, cached (s)",
         "value": round(details["decision_latency_cached_s"], 4)},
    ]
    print()
    print(format_table(rows, title=f"Search scaling ({report['setup']})"))


def write_report(report: Dict[str, object], path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")


def test_search_scaling(benchmark):
    from conftest import run_once

    report = run_once(benchmark, run_benchmark, smoke=True)
    _check(report, smoke=True)
    _print(report)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-long CI run: shorter budgets, relaxed speedup threshold",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=(
            "where to write the JSON report (default: "
            f"{DEFAULT_OUTPUT} for full runs, {SMOKE_OUTPUT} for --smoke runs "
            "— smoke numbers never overwrite the committed full baseline)"
        ),
    )
    args = parser.parse_args(argv)
    output = args.output
    if output is None:
        output = _artifact(SMOKE_OUTPUT if args.smoke else DEFAULT_OUTPUT)
    report = run_benchmark(smoke=args.smoke)
    _print(report)
    # Check before writing: a failed full run must not overwrite the
    # committed baseline with regressed numbers.
    _check(report, smoke=args.smoke)
    write_report(report, output)
    _write_metrics_snapshot(output, report)
    speedup = report["metrics"]["parallel_speedup_n4"]["value"]
    print(f"\nOK: {speedup:.2f}x wall-clock speedup at n_chains={N_CHAINS}, bit-identical plans")
    return 0


def _write_metrics_snapshot(bench_output: Path, report: Dict[str, object]) -> None:
    """Dump the live telemetry registry next to the benchmark report.

    The run's instrumented subsystems (search, service, costing, kernel)
    have been reporting into the global registry; the snapshot lands in
    ``METRICS_search_scaling[.smoke].json`` and is uploaded as a CI artifact.
    """
    from repro.obs import get_registry, write_metrics_snapshot

    registry = get_registry()
    if not registry.enabled:
        return
    path = bench_output.with_name(
        bench_output.name.replace("BENCH_", "METRICS_", 1)
    )
    write_metrics_snapshot(
        registry, path, extra={"benchmark": report["benchmark"], "mode": report["mode"]}
    )
    print(f"wrote {path}")


if __name__ == "__main__":
    raise SystemExit(main())
