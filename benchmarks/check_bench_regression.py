"""Fail-soft perf-regression check over committed ``BENCH_*.json`` baselines.

Compares the metrics of a freshly produced benchmark report against the
committed baseline and reports every metric that moved more than the
threshold in the *bad* direction (each metric declares its own
``higher_is_better``).  The check is **fail-soft** by design: benchmark
machines differ (the committed baselines come from a dev box, CI runners
vary run to run), so regressions are reported as warnings and the exit code
stays 0 unless ``--strict`` is given.  When baseline and current reports
were produced in different modes (``smoke`` vs ``full``), the tolerance is
doubled — shorter runs amortise fixed overheads differently.

Usage::

    python benchmarks/check_bench_regression.py \
        --baseline /tmp/BENCH_search_scaling.baseline.json \
        --current  BENCH_search_scaling.json [--threshold 0.2] [--strict]

Multiple ``--baseline/--current`` pairs can be checked by repeating the
invocation per file; any report following the ``{"metrics": {name:
{"value": v, "higher_is_better": b}}}`` convention works.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List


def load_report(path: Path) -> Dict[str, object]:
    with path.open() as handle:
        return json.load(handle)


def compare(
    baseline: Dict[str, object],
    current: Dict[str, object],
    threshold: float,
) -> List[str]:
    """Return one human-readable line per regressed metric."""
    base_metrics = baseline.get("metrics", {})
    cur_metrics = current.get("metrics", {})
    if baseline.get("mode") != current.get("mode"):
        threshold = threshold * 2
    regressions: List[str] = []
    for name, base_entry in sorted(base_metrics.items()):
        cur_entry = cur_metrics.get(name)
        if cur_entry is None:
            regressions.append(f"{name}: present in baseline but missing now")
            continue
        base_value = float(base_entry["value"])
        cur_value = float(cur_entry["value"])
        higher_is_better = bool(base_entry.get("higher_is_better", True))
        if base_value == 0:
            continue
        change = (cur_value - base_value) / abs(base_value)
        regressed = change < -threshold if higher_is_better else change > threshold
        if regressed:
            direction = "dropped" if higher_is_better else "rose"
            regressions.append(
                f"{name}: {direction} {abs(change) * 100:.1f}% "
                f"({base_value:.4g} -> {cur_value:.4g}, tolerance {threshold * 100:.0f}%)"
            )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, required=True,
                        help="committed baseline JSON report")
    parser.add_argument("--current", type=Path, required=True,
                        help="freshly produced JSON report")
    parser.add_argument("--threshold", type=float, default=0.2,
                        help="relative regression tolerance (default 0.2 = 20%%)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on regressions (default: warn only)")
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; nothing to compare (first run?)")
        return 0
    if not args.current.exists():
        print(f"current report {args.current} missing — benchmark did not run?")
        return 1 if args.strict else 0

    baseline = load_report(args.baseline)
    current = load_report(args.current)
    regressions = compare(baseline, current, args.threshold)
    label = f"{current.get('benchmark', args.current.name)}"
    if not regressions:
        print(
            f"perf check OK: {label} within {args.threshold * 100:.0f}% of baseline "
            f"(baseline mode={baseline.get('mode')}, current mode={current.get('mode')})"
        )
        return 0
    print(f"PERF REGRESSION WARNING: {label} vs committed baseline")
    for line in regressions:
        print(f"  - {line}")
    if not args.strict:
        print("(fail-soft: benchmark machines differ; investigate before trusting)")
    return 1 if args.strict else 0


if __name__ == "__main__":
    raise SystemExit(main())
