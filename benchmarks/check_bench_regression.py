"""Fail-soft perf-regression check over committed ``BENCH_*.json`` baselines.

Compares the metrics of a freshly produced benchmark report against the
committed baseline and prints **every** metric's movement — direction,
percentage and values — so a passing check still documents how the run
compared, not just that it passed.  A metric regresses when it moved more
than the threshold in the *bad* direction (each metric declares its own
``higher_is_better``).  The check is **fail-soft** by design: benchmark
machines differ (the committed baselines come from a dev box, CI runners
vary run to run), so regressions are reported as warnings and the exit code
stays 0 unless ``--strict`` is given.  When baseline and current reports
were produced in different modes (``smoke`` vs ``full``), the tolerance is
doubled — shorter runs amortise fixed overheads differently.

Usage::

    python benchmarks/check_bench_regression.py \
        --baseline /tmp/BENCH_search_scaling.baseline.json \
        --current  BENCH_search_scaling.json [--threshold 0.2] [--strict]

Multiple ``--baseline/--current`` pairs can be checked by repeating the
invocation per file; any report following the ``{"metrics": {name:
{"value": v, "higher_is_better": b}}}`` convention works.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List


def _resolve(path: Path) -> Path:
    """Relative report paths resolve against ``REPRO_ARTIFACT_DIR`` when set.

    Mirrors :func:`repro.obs.artifact_path` without importing the package —
    the checker stays runnable standalone, against any report file.
    """
    if path.is_absolute():
        return path
    base = os.environ.get("REPRO_ARTIFACT_DIR", "").strip()
    return Path(base) / path if base else path


def load_report(path: Path) -> Dict[str, object]:
    with path.open() as handle:
        return json.load(handle)


@dataclass(frozen=True)
class MetricComparison:
    """How one metric moved between baseline and current report."""

    name: str
    base_value: float
    cur_value: float
    change: float
    """Relative change ``(cur - base) / |base|`` (0.0 when base is 0)."""
    higher_is_better: bool
    threshold: float
    regressed: bool
    missing: bool = False
    new: bool = False
    """Present in the current report but absent from the baseline —
    informational only (baselines evolve; a new metric is not a verdict)."""

    def describe(self) -> str:
        """One human-readable line: direction, size and verdict."""
        if self.missing:
            return f"{self.name}: present in baseline but missing now [REGRESSED]"
        if self.new:
            return (
                f"{self.name}: not in baseline ({self.cur_value:.4g} now) [new]"
            )
        if self.change > 0:
            direction = "rose"
        elif self.change < 0:
            direction = "dropped"
        else:
            direction = "unchanged"
        better = "higher is better" if self.higher_is_better else "lower is better"
        line = (
            f"{self.name}: {direction} {abs(self.change) * 100:.1f}% "
            f"({self.base_value:.4g} -> {self.cur_value:.4g}, {better}, "
            f"tolerance {self.threshold * 100:.0f}%)"
        )
        return f"{line} [REGRESSED]" if self.regressed else f"{line} [ok]"


def compare(
    baseline: Dict[str, object],
    current: Dict[str, object],
    threshold: float,
) -> List[MetricComparison]:
    """Compare every baseline metric; returns one record per metric."""
    base_metrics = baseline.get("metrics", {})
    cur_metrics = current.get("metrics", {})
    if baseline.get("mode") != current.get("mode"):
        threshold = threshold * 2
    comparisons: List[MetricComparison] = []
    for name, base_entry in sorted(base_metrics.items()):
        cur_entry = cur_metrics.get(name)
        higher_is_better = bool(base_entry.get("higher_is_better", True))
        base_value = float(base_entry["value"])
        if cur_entry is None:
            comparisons.append(
                MetricComparison(
                    name=name,
                    base_value=base_value,
                    cur_value=float("nan"),
                    change=0.0,
                    higher_is_better=higher_is_better,
                    threshold=threshold,
                    regressed=True,
                    missing=True,
                )
            )
            continue
        cur_value = float(cur_entry["value"])
        change = (cur_value - base_value) / abs(base_value) if base_value else 0.0
        if base_value == 0:
            regressed = False
        elif higher_is_better:
            regressed = change < -threshold
        else:
            regressed = change > threshold
        comparisons.append(
            MetricComparison(
                name=name,
                base_value=base_value,
                cur_value=cur_value,
                change=change,
                higher_is_better=higher_is_better,
                threshold=threshold,
                regressed=regressed,
            )
        )
    # Metrics the current report added relative to the (older) baseline:
    # informational, never a regression — this is how baselines grow new
    # metrics without the first comparison against them failing.
    for name, cur_entry in sorted(cur_metrics.items()):
        if name in base_metrics:
            continue
        comparisons.append(
            MetricComparison(
                name=name,
                base_value=float("nan"),
                cur_value=float(cur_entry["value"]),
                change=0.0,
                higher_is_better=bool(cur_entry.get("higher_is_better", True)),
                threshold=threshold,
                regressed=False,
                new=True,
            )
        )
    return comparisons


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", type=Path, required=True,
                        help="committed baseline JSON report")
    parser.add_argument("--current", type=Path, required=True,
                        help="freshly produced JSON report")
    parser.add_argument("--threshold", type=float, default=0.2,
                        help="relative regression tolerance (default 0.2 = 20%%)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on regressions (default: warn only)")
    args = parser.parse_args(argv)
    args.baseline = _resolve(args.baseline)
    args.current = _resolve(args.current)

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; nothing to compare (first run?)")
        return 0
    if not args.current.exists():
        print(f"current report {args.current} missing — benchmark did not run?")
        return 1 if args.strict else 0

    baseline = load_report(args.baseline)
    current = load_report(args.current)
    comparisons = compare(baseline, current, args.threshold)
    regressions = [c for c in comparisons if c.regressed]
    label = f"{current.get('benchmark', args.current.name)}"
    verdict = "OK" if not regressions else "REGRESSION WARNING"
    print(
        f"perf check {verdict}: {label} "
        f"({len(comparisons) - len(regressions)}/{len(comparisons)} metrics within "
        f"tolerance; baseline mode={baseline.get('mode')}, "
        f"current mode={current.get('mode')})"
    )
    for comparison in comparisons:
        print(f"  - {comparison.describe()}")
    if not regressions:
        return 0
    if not args.strict:
        print("(fail-soft: benchmark machines differ; investigate before trusting)")
    return 1 if args.strict else 0


if __name__ == "__main__":
    raise SystemExit(main())
