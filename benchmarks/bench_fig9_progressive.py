"""Figure 9: wall time of one training step with progressively applied optimizations.

Levels (left to right in the paper): the heuristic plan without CUDA graphs,
CUDA-graph generation, optimized generation parallelization, optimized
training parallelization with concurrent execution, and optimized inference
parallelization — the last bar being the full ReaL plan.
"""

from conftest import bench_scale, bench_search_config, run_once

from repro.algorithms import build_ppo_graph
from repro.cluster import make_cluster
from repro.core import instructgpt_workload
from repro.experiments import format_table, progressive_optimization


def run_figure9():
    graph = build_ppo_graph()
    results = {}
    cases = [("7B+7B", "7b", "7b", 16, 512)]
    if bench_scale() == "full":
        cases.append(("70B+7B", "70b", "7b", 128, 4096))
    for label, actor, critic, n_gpus, batch in cases:
        workload = instructgpt_workload(actor, critic, batch_size=batch)
        cluster = make_cluster(n_gpus)
        results[label] = progressive_optimization(
            graph, workload, cluster, search_config=bench_search_config()
        )
    return results


def test_figure9_progressive_optimizations(benchmark):
    results = run_once(benchmark, run_figure9)
    print()
    for label, levels in results.items():
        rows = [
            {
                "optimization": level.name,
                "s/iter": round(level.seconds_per_iteration, 1),
                "actor_gen s": round(level.call_seconds.get("actor_generate", 0.0), 1),
                "actor_train s": round(level.call_seconds.get("actor_train", 0.0), 1),
            }
            for level in levels
        ]
        print(format_table(rows, title=f"Figure 9: progressive optimization, {label}"))
        print()
        first, last = levels[0], levels[-1]
        # The fully optimized plan is meaningfully faster than the unoptimised
        # heuristic (the paper reports ~1.9x for 7B+7B, ~1.7x for 70B+7B).
        assert last.seconds_per_iteration < first.seconds_per_iteration
        # CUDA-graph capture alone speeds up generation.
        assert levels[1].call_seconds["actor_generate"] <= first.call_seconds["actor_generate"]
