"""Online re-planning vs plan-once-at-admission on a dynamic multi-job trace.

The acceptance experiment of the online re-planning subsystem: the same
staggered PPO/GRPO trace is scheduled twice under the ``best_throughput``
policy — once the paper's way (one plan search at admission, ride it to
completion) and once with background :class:`~repro.core.search.SearchSession`
sessions polling between iteration boundaries and hot-swapping the plan when
the remaining-work gain clears the swap margin *after* charging the real
parameter-switch cost from
:class:`~repro.sched.profiles.MigrationCostModel`.  Admission budgets are
deliberately tiny (that is the realistic operating point: admission must be
fast) while the background budget is generous (it runs during otherwise
plan-idle execution), so online re-planning should recover the throughput the
rushed admission search left on the table — the benchmark asserts it beats
plan-once on aggregate iterations/sec with at least one swap taken.

Each arm runs on its own fresh :class:`PlanService`, so cache write-backs
from the online arm cannot leak into the baseline.  The online arm exports
its merged Chrome trace to ``TRACE_online_replanning.json`` (swap events
appear as instants on the cluster events track).  Results are written to
``BENCH_online_replanning.json`` at the repo root
(``BENCH_online_replanning.smoke.json`` for ``--smoke`` runs) and compared
against the committed baseline by ``benchmarks/check_bench_regression.py``.

Run standalone (``python benchmarks/bench_online_replanning.py``; add
``--smoke`` for a seconds-long CI-friendly run) or via pytest
(``pytest benchmarks/bench_online_replanning.py``).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Dict, Optional

from repro.core import SearchConfig
from repro.cluster import make_cluster
from repro.experiments import format_table
from repro.obs import artifact_path, machine_fingerprint
from repro.sched import ClusterScheduler, JobSpec, SchedulerConfig

_REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = "BENCH_online_replanning.json"
SMOKE_OUTPUT = "BENCH_online_replanning.smoke.json"
ONLINE_TRACE = "TRACE_online_replanning.json"


def _artifact(name: str) -> Path:
    """Artifact location: ``REPRO_ARTIFACT_DIR`` wins, else the repo root
    (the historical destination the committed baselines live at)."""
    return artifact_path(name, default_dir=_REPO_ROOT)


def _trace(smoke: bool):
    """Staggered arrivals of mixed PPO/GRPO jobs on two 8-GPU nodes."""
    n_jobs = 2 if smoke else 4
    return [
        JobSpec(
            name=f"job-{i}",
            algorithm="grpo" if i % 2 else "ppo",
            batch_size=128,
            arrival_time=40.0 * i,
            target_iterations=25 if smoke else 40,
            min_gpus=8,
            max_gpus=8,
        )
        for i in range(n_jobs)
    ]


def _config(online: bool, smoke: bool) -> SchedulerConfig:
    # The admission budget is rushed on purpose — both arms share it, so the
    # baseline arm is stuck with whatever it finds, while the online arm
    # keeps searching in the background.  Elasticity is off in both arms so
    # the comparison isolates plan quality from partition growth.
    return SchedulerConfig(
        search=SearchConfig(
            max_iterations=20, time_budget_s=1.0, seed=0, record_history=False
        ),
        elastic=False,
        online_replanning=online,
        online_search=SearchConfig(
            max_iterations=400 if smoke else 1200,
            time_budget_s=30.0,
            seed=0,
            record_history=False,
        ),
        poll_interval_s=15.0,
        poll_iterations=100,
        swap_margin=1.01,
    )


def _run_arm(online: bool, smoke: bool, trace_path: Optional[str]) -> Dict[str, float]:
    started = time.perf_counter()
    scheduler = ClusterScheduler(
        cluster=make_cluster(16),
        jobs=_trace(smoke),
        policy="best_throughput",
        config=_config(online, smoke),
        trace_path=trace_path,
    )
    report = scheduler.run()
    wall_s = time.perf_counter() - started
    assert report.all_completed, "benchmark arm left jobs incomplete"
    return {
        "agg_iters_per_sec": report.aggregate_iterations_per_second,
        "makespan_s": report.makespan,
        "n_swaps": float(report.n_swaps),
        "n_swaps_rejected": float(report.n_swaps_rejected),
        "n_search_polls": float(report.n_search_polls),
        "online_sessions": float(report.online_sessions),
        "swap_seconds_saved": report.swap_seconds_saved,
        "total_switch_seconds": report.total_switch_seconds,
        "wall_s": wall_s,
    }


def _metric(value: float, higher_is_better: bool) -> Dict[str, object]:
    return {"value": value, "higher_is_better": higher_is_better}


def run_benchmark(smoke: bool = False) -> Dict[str, object]:
    baseline = _run_arm(online=False, smoke=smoke, trace_path=None)
    online = _run_arm(online=True, smoke=smoke, trace_path=str(_artifact(ONLINE_TRACE)))
    speedup = online["agg_iters_per_sec"] / baseline["agg_iters_per_sec"]
    return {
        "benchmark": "online_replanning",
        "mode": "smoke" if smoke else "full",
        "setup": (
            "staggered PPO/GRPO trace on 16 GPUs, best_throughput policy, "
            "rushed admission search; online arm polls background sessions "
            "and hot-swaps at iteration boundaries"
        ),
        "machine": machine_fingerprint(),
        "details": {
            **{f"baseline_{k}": v for k, v in baseline.items()},
            **{f"online_{k}": v for k, v in online.items()},
        },
        "metrics": {
            "baseline_agg_iters_per_sec": _metric(baseline["agg_iters_per_sec"], True),
            "online_agg_iters_per_sec": _metric(online["agg_iters_per_sec"], True),
            "online_speedup": _metric(speedup, True),
            "swaps_taken": _metric(online["n_swaps"], True),
        },
    }


def _check(report: Dict[str, object]) -> None:
    metrics = report["metrics"]
    details = report["details"]
    # The acceptance criterion: online re-planning beats plan-once on
    # aggregate iters/s with swap costs charged, via at least one real swap.
    assert metrics["online_speedup"]["value"] > 1.0, (
        f"online re-planning did not beat plan-once: "
        f"speedup {metrics['online_speedup']['value']:.4f}"
    )
    assert metrics["swaps_taken"]["value"] >= 1
    assert details["online_n_search_polls"] >= 1
    assert details["online_swap_seconds_saved"] > 0
    assert details["baseline_n_swaps"] == 0
    # The exported merged trace carries the swap instants.
    events = json.loads(_artifact(ONLINE_TRACE).read_text())["traceEvents"]
    swap_instants = [
        e for e in events if e.get("ph") == "i" and e.get("cat") == "swap"
    ]
    assert len(swap_instants) == int(details["online_n_swaps"])


def _print(report: Dict[str, object]) -> None:
    details = report["details"]
    rows = [
        {"arm": "plan-once",
         "agg iters/s": round(details["baseline_agg_iters_per_sec"], 4),
         "makespan (s)": round(details["baseline_makespan_s"], 1),
         "swaps": int(details["baseline_n_swaps"]),
         "polls": int(details["baseline_n_search_polls"])},
        {"arm": "online re-planning",
         "agg iters/s": round(details["online_agg_iters_per_sec"], 4),
         "makespan (s)": round(details["online_makespan_s"], 1),
         "swaps": int(details["online_n_swaps"]),
         "polls": int(details["online_n_search_polls"])},
    ]
    print()
    print(format_table(rows, title=f"Online re-planning ({report['mode']})"))
    speedup = report["metrics"]["online_speedup"]["value"]
    print(
        f"speedup {speedup:.3f}x, ~{details['online_swap_seconds_saved']:.0f} s saved "
        f"by {int(details['online_n_swaps'])} swaps "
        f"({int(details['online_n_swaps_rejected'])} rejected), "
        f"trace: {ONLINE_TRACE}"
    )


def write_report(report: Dict[str, object], path: Path) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")


def test_online_replanning(benchmark):
    from conftest import run_once

    report = run_once(benchmark, run_benchmark, smoke=True)
    _check(report)
    _print(report)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-long CI run: fewer jobs, iterations and search budget",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help=(
            "where to write the JSON report (default: "
            f"{DEFAULT_OUTPUT} for full runs, {SMOKE_OUTPUT} for --smoke runs "
            "— smoke numbers never overwrite the committed full baseline)"
        ),
    )
    args = parser.parse_args(argv)
    output = args.output
    if output is None:
        output = _artifact(SMOKE_OUTPUT if args.smoke else DEFAULT_OUTPUT)
    report = run_benchmark(smoke=args.smoke)
    _print(report)
    _check(report)
    write_report(report, output)
    _write_metrics_snapshot(output, report)
    speedup = report["metrics"]["online_speedup"]["value"]
    print(f"\nOK: online re-planning beat plan-once by {speedup:.3f}x")
    return 0


def _write_metrics_snapshot(bench_output: Path, report: Dict[str, object]) -> None:
    """Dump the live telemetry registry next to the benchmark report
    (``METRICS_online_replanning[.smoke].json``, uploaded as a CI artifact)."""
    from repro.obs import get_registry, write_metrics_snapshot

    registry = get_registry()
    if not registry.enabled:
        return
    path = bench_output.with_name(
        bench_output.name.replace("BENCH_", "METRICS_", 1)
    )
    write_metrics_snapshot(
        registry, path, extra={"benchmark": report["benchmark"], "mode": report["mode"]}
    )
    print(f"wrote {path}")


if __name__ == "__main__":
    raise SystemExit(main())
