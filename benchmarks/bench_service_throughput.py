"""Plan-service throughput: requests/sec and cache-hit rate on a mixed stream.

Unlike the figure benchmarks, this one measures the *serving* layer added on
top of the paper's search: a stream of planning requests mixing repeated and
novel workloads flows through the concurrent :class:`PlanService`, and we
report end-to-end requests/sec, the cache hit rate, and the latency gap
between cold searches and cached answers (which must be at least 10x).
"""

from __future__ import annotations

import time

import pytest

from conftest import bench_scale, run_once

from repro.algorithms import build_ppo_graph
from repro.cluster import make_cluster
from repro.core import SearchConfig, instructgpt_workload
from repro.experiments import format_table
from repro.service import PlanRequest, PlanService


def _request(graph, batch_size: int, max_iterations: int) -> PlanRequest:
    return PlanRequest(
        graph=graph,
        workload=instructgpt_workload("7b", "7b", batch_size=batch_size),
        cluster=make_cluster(8),
        search=SearchConfig(
            max_iterations=max_iterations,
            time_budget_s=30.0,
            seed=0,
            record_history=False,
        ),
    )


def run_service_throughput():
    graph = build_ppo_graph()
    max_iterations = 150 if bench_scale() != "full" else 1500
    repeats = 4 if bench_scale() != "full" else 16
    batch_sizes = [64, 96, 128] if bench_scale() != "full" else [64, 96, 128, 192, 256]

    # A mixed stream in two waves.  The first wave interleaves novel and
    # repeated workloads while searches are still in flight, so duplicates
    # collapse onto the running search (dedup); the second wave replays the
    # stream after the searches finished, so repeats become cache hits.
    wave = [
        _request(graph, batch_size, max_iterations)
        for _ in range(repeats // 2)
        for batch_size in batch_sizes
    ]

    service = PlanService(max_workers=4)
    try:
        start = time.perf_counter()
        first_futures = [service.submit(request) for request in wave]
        responses = [future.result() for future in first_futures]
        second_futures = [service.submit(request) for request in wave]
        responses += [future.result() for future in second_futures]
        elapsed = time.perf_counter() - start
        stats = service.stats.snapshot()
    finally:
        service.close()
    stream = wave + wave

    cold = [r.stats.total_seconds for r in responses
            if not r.stats.cache_hit and not r.stats.dedup_joined]
    hits = [r.stats.total_seconds for r in responses if r.stats.cache_hit]
    avg_cold = sum(cold) / len(cold)
    avg_hit = sum(hits) / len(hits) if hits else float("nan")
    row = {
        "requests": len(stream),
        "unique": len(batch_sizes),
        "req/s": round(len(stream) / elapsed, 1),
        "hit rate": f"{stats.hit_rate:.0%}",
        "dedup joins": stats.dedup_joins,
        "cold avg (ms)": round(avg_cold * 1e3, 1),
        "hit avg (ms)": round(avg_hit * 1e3, 2),
        "hit speedup": f"{avg_cold / avg_hit:.0f}x" if hits else "n/a",
    }
    return row, stats, responses, avg_cold, avg_hit


def test_service_throughput(benchmark):
    row, stats, responses, avg_cold, avg_hit = run_once(benchmark, run_service_throughput)
    print()
    print(format_table([row], title="Plan service: mixed request stream"))
    # Machine-readable aggregate counters (e.g. for dashboards/CI scraping).
    stats_dict = stats.to_dict()
    print(f"service stats: {stats_dict}")
    assert stats_dict["requests"] == len(responses)
    assert stats_dict["hit_rate"] == pytest.approx(stats.hit_rate)
    # Every request was answered with the same plan as its duplicates.
    by_fingerprint = {}
    for response in responses:
        by_fingerprint.setdefault(response.stats.fingerprint, set()).add(response.cost)
    assert all(len(costs) == 1 for costs in by_fingerprint.values())
    # Only the novel workloads ran a search.
    assert stats.cache_misses == len(by_fingerprint)
    assert stats.cache_hits + stats.dedup_joins == stats.requests - stats.cache_misses
    assert stats.cache_hits > 0
    # Serving a repeated request is at least 10x faster than searching.
    assert avg_cold >= 10.0 * avg_hit
