"""Multi-job scheduler: policy comparison and failure-recovery on one cluster.

Unlike the figure benchmarks, this one measures the cluster-level scheduling
layer built on top of the paper's planner: a trace of concurrent RLHF jobs
(mixed algorithms, batch sizes and durations) flows through the
:class:`~repro.sched.scheduler.ClusterScheduler` under several policies, all
sharing one :class:`~repro.service.server.PlanService`.  Reported per policy:
makespan, aggregate iterations/sec, GPU utilization and queue waits.  Checked:

* the best packing policy beats naive static equal partitioning on aggregate
  iterations/sec (the static baseline strands GPUs whenever a slot's job
  finishes early);
* a failure-injection scenario completes every job, and the warm-started
  replans of displaced jobs spend less search time than cold placements.

Run standalone (``python benchmarks/bench_scheduler.py``; add ``--smoke``
for a seconds-long CI-friendly run) or via pytest
(``pytest benchmarks/bench_scheduler.py``).
"""

from __future__ import annotations

import argparse
import random
from typing import Dict, List, Optional

from repro.cluster import make_cluster
from repro.core import SearchConfig
from repro.experiments import format_table, run_scheduler_comparison
from repro.sched import (
    JobSpec,
    NodeFailure,
    SchedulerConfig,
    StaticEqualPolicy,
    schedule_trace,
)
from repro.service import PlanService


def _trace(n_jobs: int, seed: int = 0) -> List[JobSpec]:
    """A heterogeneous trace: short and long jobs, mixed algorithms/batches.

    Half the jobs are short (they free capacity early, which only elastic
    policies can exploit), half are long; arrivals are staggered with
    seed-deterministic jitter so queue waits differ across policies while
    any two runs with the same ``--seed`` see the *same* trace.
    """
    rng = random.Random(seed)
    jobs: List[JobSpec] = []
    for i in range(n_jobs // 2):
        jitter = round(rng.uniform(0.0, 1.5), 3)
        jobs.append(
            JobSpec(
                name=f"short-{i}",
                algorithm="grpo" if i % 2 else "ppo",
                batch_size=128,
                target_iterations=rng.choice((5, 6, 7)),
                min_gpus=8,
                max_gpus=32,
                arrival_time=2.0 * i + jitter,
            )
        )
        jobs.append(
            JobSpec(
                name=f"long-{i}",
                algorithm="ppo",
                batch_size=256,
                target_iterations=rng.choice((28, 30, 32)),
                min_gpus=8,
                max_gpus=32,
                priority=1,
                arrival_time=2.0 * i + jitter,
            )
        )
    return jobs


def _config(smoke: bool, seed: int = 0) -> SchedulerConfig:
    budget = SearchConfig(
        max_iterations=80 if smoke else 400,
        time_budget_s=1.0 if smoke else 5.0,
        record_history=False,
        seed=seed,
    )
    return SchedulerConfig(search=budget)


def run_benchmark(
    smoke: bool = True,
    seed: int = 0,
    n_jobs: Optional[int] = None,
    n_gpus: Optional[int] = None,
    horizon_s: Optional[float] = None,
) -> Dict[str, object]:
    """Policy comparison (+ failure injection on the hand-rolled trace).

    Passing any of ``n_jobs``/``n_gpus``/``horizon_s`` switches to *scale
    mode*: a synthetic fleet trace (:mod:`repro.capacity.fleet`) under the
    fleet scheduler preset, comparing only the elastic packing policies
    (static equal partitioning cannot host a fleet-sized job mix, and the
    failure-injection scenario stays on the small golden trace).
    """
    scaled = n_jobs is not None or n_gpus is not None or horizon_s is not None
    if scaled:
        from repro.capacity import FleetTraceConfig, fleet_scheduler_config, generate_fleet_trace

        n_gpus = n_gpus if n_gpus is not None else 256
        n_jobs = n_jobs if n_jobs is not None else 100
        cluster = make_cluster(n_gpus)
        jobs = generate_fleet_trace(
            FleetTraceConfig(
                n_jobs=n_jobs,
                horizon_s=horizon_s if horizon_s is not None else 7200.0,
                seed=seed,
            )
        )
        config = fleet_scheduler_config()
        policies: List[object] = ["first_fit", "best_throughput"]
    else:
        n_gpus = 64 if smoke else 128
        n_jobs = 8 if smoke else 12
        cluster = make_cluster(n_gpus)
        jobs = _trace(n_jobs, seed=seed)
        config = _config(smoke, seed=seed)
        policies = [
            StaticEqualPolicy(n_slots=cluster.n_nodes),
            "first_fit",
            "priority",
            "best_throughput",
        ]

    # --- Policy comparison, sharing one plan service (and thus one cache:
    # --- same-shaped partitions are exact hits across policies).
    with PlanService(max_workers=4, estimator_cache_size=32) as service:
        baseline = service.stats.snapshot()
        reports = run_scheduler_comparison(
            cluster,
            jobs,
            policies=policies,
            config=config,
            plan_service=service,
        )
        # Delta arithmetic, not a raw snapshot: attribute only this
        # comparison's traffic even if the service is later reused/pre-warmed.
        service_stats = (service.stats.snapshot() - baseline).to_dict()
    by_policy = {report.policy: report for report in reports}

    # --- Failure injection on a fresh service, so cold vs. warm-started
    # --- replan search times are measured from scratch.  Skipped in scale
    # --- mode: the failure scenario is part of the small golden comparison.
    failure_report = None
    if not scaled:
        failure = NodeFailure(time=60.0, node=1, recovery_time=200.0)
        with PlanService(max_workers=4, estimator_cache_size=32) as fail_service:
            failure_report = schedule_trace(
                cluster=cluster,
                jobs=jobs,
                policy="best_throughput",
                config=config,
                service=fail_service,
                failures=[failure],
            )

    return {
        "reports": reports,
        "by_policy": by_policy,
        "service_stats": service_stats,
        "failure_report": failure_report,
        "n_gpus": n_gpus,
        "n_jobs": n_jobs,
        "scaled": scaled,
    }


def _check(results: Dict[str, object]) -> None:
    by_policy = results["by_policy"]
    for report in results["reports"]:
        assert report.all_completed, f"{report.policy} left jobs incomplete"
    if results["scaled"]:
        # Scale mode: both elastic policies must finish the fleet trace and
        # deliver work; there is no static baseline or failure scenario.
        for policy in ("first_fit", "best_throughput"):
            assert by_policy[policy].total_iterations > 0
        return
    static = by_policy["static_equal"]
    packing = by_policy["best_throughput"]
    # The packing policy must beat naive static equal partitioning on
    # aggregate iterations/sec.
    assert (
        packing.aggregate_iterations_per_second
        > static.aggregate_iterations_per_second
    ), (
        f"best_throughput ({packing.aggregate_iterations_per_second:.3f} iters/s) "
        f"does not beat static equal "
        f"({static.aggregate_iterations_per_second:.3f} iters/s)"
    )
    # The failure scenario completes everything via warm-started replans that
    # are cheaper than cold placements.
    failure_report = results["failure_report"]
    assert failure_report.all_completed, "failure scenario left jobs incomplete"
    assert failure_report.n_failures == 1
    assert failure_report.n_replans >= 1, "no displaced job was replanned"
    cold = failure_report.cold_searches
    replan = failure_report.replan_searches
    assert cold.count > 0 and replan.count > 0
    assert replan.mean_seconds < cold.mean_seconds, (
        f"replans averaged {replan.mean_seconds * 1e3:.1f} ms of search vs "
        f"{cold.mean_seconds * 1e3:.1f} ms cold — warm starts should be cheaper"
    )


def _print(results: Dict[str, object]) -> None:
    rows = [report.summary_row() for report in results["reports"]]
    print()
    print(
        format_table(
            rows,
            title=(
                f"Scheduling policies: {results['n_jobs']} jobs on "
                f"{results['n_gpus']} GPUs"
            ),
        )
    )
    failure_report = results["failure_report"]
    if failure_report is not None:
        cold = failure_report.cold_searches
        replan = failure_report.replan_searches
        print(
            format_table(
                [
                    {
                        **failure_report.summary_row(),
                        "cold search (ms)": round(cold.mean_seconds * 1e3, 1),
                        "replan search (ms)": round(replan.mean_seconds * 1e3, 1),
                    }
                ],
                title="Failure injection (node down + recovery), best_throughput",
            )
        )
    print(f"shared service stats: {results['service_stats']}")


def test_scheduler_policies(benchmark):
    from conftest import run_once

    results = run_once(benchmark, run_benchmark, smoke=True)
    _check(results)
    _print(results)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-long CI run: 64 GPUs, 8 jobs, reduced search budgets",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for trace generation and plan search: same seed, same run",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="scale mode: compare policies on a synthetic fleet trace with this many jobs",
    )
    parser.add_argument(
        "--gpus",
        type=int,
        default=None,
        help="scale mode: cluster size in GPUs",
    )
    parser.add_argument(
        "--horizon",
        type=float,
        default=None,
        help="scale mode: fleet trace arrival horizon in seconds",
    )
    args = parser.parse_args(argv)
    results = run_benchmark(
        smoke=args.smoke,
        seed=args.seed,
        n_jobs=args.jobs,
        n_gpus=args.gpus,
        horizon_s=args.horizon,
    )
    _check(results)
    _print(results)
    if results["scaled"]:
        packing = results["by_policy"]["best_throughput"]
        print(
            f"\nOK: fleet trace of {results['n_jobs']} jobs completed on "
            f"{results['n_gpus']} GPUs ({packing.total_iterations:.0f} iterations)"
        )
        return 0
    packing = results["by_policy"]["best_throughput"]
    static = results["by_policy"]["static_equal"]
    speedup = (
        packing.aggregate_iterations_per_second
        / static.aggregate_iterations_per_second
    )
    print(f"\nOK: best_throughput packs {speedup:.2f}x the aggregate iters/s of static equal")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
