"""Figure 13: improvement ratio of the best discovered plan versus search time.

The paper tracks the estimated cost of the best plan found so far relative to
the initial plan as the MCMC search proceeds, for four model sizes and two
context lengths; good plans appear within seconds to a couple of minutes.
"""

from conftest import bench_scale, bench_search_config, run_once

from repro.algorithms import build_ppo_graph
from repro.cluster import make_cluster
from repro.core import MCMCSearcher, instructgpt_workload
from repro.experiments import format_table, gpus_for_actor


def run_figure13():
    graph = build_ppo_graph()
    actors = ["7b"] if bench_scale() != "full" else ["7b", "13b", "34b", "70b"]
    contexts = [2048] if bench_scale() != "full" else [2048, 8192]
    rows = []
    for context in contexts:
        for actor in actors:
            n_gpus = gpus_for_actor(actor)
            workload = instructgpt_workload(
                actor, "7b", batch_size=n_gpus * 32,
                prompt_len=context // 2, gen_len=context // 2,
            )
            cluster = make_cluster(n_gpus)
            searcher = MCMCSearcher(graph, workload, cluster, config=bench_search_config())
            result = searcher.search()
            # Sample the improvement-ratio curve at a few points in time.
            checkpoints = [0.25, 0.5, 1.0]
            curve = {}
            for fraction in checkpoints:
                cutoff = fraction * result.elapsed_seconds
                best = min(
                    (cost for _, elapsed, cost in result.history if elapsed <= cutoff),
                    default=result.initial_cost,
                )
                curve[f"ratio@{int(fraction * 100)}%"] = round(best / result.initial_cost, 3)
            rows.append(
                {
                    "actor": actor.upper(),
                    "context": context,
                    "search time (s)": round(result.elapsed_seconds, 1),
                    **curve,
                    "final ratio": round(result.improvement_ratio, 3),
                }
            )
    return rows


def test_figure13_search_progress(benchmark):
    rows = run_once(benchmark, run_figure13)
    print()
    print(format_table(rows, title="Figure 13: improvement ratio vs search time"))
    for row in rows:
        # The ratio is monotonically non-increasing over time and ends <= 1.
        assert row["ratio@25%"] >= row["ratio@50%"] >= row["ratio@100%"]
        assert row["final ratio"] <= 1.0
